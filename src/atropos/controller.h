// Integration surface between applications and overload controllers.
//
// Applications emit one instrumentation stream (task lifecycle, resource
// tracing, request completions); every controller — Atropos itself and the
// reimplemented baselines (Protego, pBox, DARC, PARTIES) — consumes that same
// stream, which keeps the comparison fair (§5.1 "we carefully integrate each
// of these frameworks into our test applications").
//
// Controllers act back on the application through a ControlSurface the
// application implements: cancelling a task always goes through the
// application's own safe cancellation initiator (§3.6).

#ifndef SRC_ATROPOS_CONTROLLER_H_
#define SRC_ATROPOS_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/atropos/types.h"
#include "src/common/clock.h"

namespace atropos {

// Why a controller is terminating a task; determines how the frontend
// accounts for it (culprit cancellations may be re-executed; victim drops are
// returned to the client as errors).
enum class CancelReason {
  kCulprit = 0,     // Atropos-style: this task causes the overload
  kVictimDrop = 1,  // Protego-style: this request is dropped to shed load
};

// Actions a controller can take on the application. The application
// implements what it supports; defaults are no-ops.
class ControlSurface {
 public:
  virtual ~ControlSurface() = default;

  // Invokes the application's cancellation initiator for the task `key`.
  virtual void CancelTask(uint64_t key, CancelReason reason) = 0;

  // pBox-style penalty: slow the task's resource consumption by `factor`
  // (1.0 = unthrottled).
  virtual void ThrottleTask(uint64_t key, double factor) {}

  // DARC-style: reserve `workers` of the app's worker pool for requests of
  // `request_type`.
  virtual void SetTypeReservation(int request_type, int workers) {}

  // PARTIES-style: set the resource share of a client class.
  virtual void SetClientShare(int client_class, double share) {}
};

// Event stream + periodic tick. All hooks default to no-ops so controllers
// implement only what they use.
class OverloadController {
 public:
  virtual ~OverloadController() = default;

  virtual std::string_view name() const = 0;

  // Declares an application resource before tracing against it. The base
  // implementation hands out ids and remembers the class so that simpler
  // controllers (the baselines) can classify events; AtroposRuntime overrides
  // with its full resource registry.
  virtual ResourceId RegisterResource(std::string name, ResourceClass cls) {
    ResourceId id = next_generic_resource_id_++;
    resource_classes_[id] = cls;
    return id;
  }

  // Task lifecycle (paper Fig 6a: createCancel / freeCancel). Only tasks
  // registered cancellable are ever considered by cancellation policies
  // (§3.5: tasks not marked as such are excluded from the algorithm).
  virtual void OnTaskRegistered(uint64_t key, bool background, bool cancellable = true) {}
  virtual void OnTaskFreed(uint64_t key) {}

  // Resource tracing (paper Fig 6b: getResource / freeResource /
  // slowByResource). Waits are bracketed so in-progress stalls are visible.
  virtual void OnGet(uint64_t key, ResourceId resource, uint64_t amount) {}
  virtual void OnFree(uint64_t key, ResourceId resource, uint64_t amount) {}
  virtual void OnWaitBegin(uint64_t key, ResourceId resource) {}
  virtual void OnWaitEnd(uint64_t key, ResourceId resource) {}

  // Request lifecycle, for end-to-end detection. `request_type` is an
  // app-defined class (e.g. point-select vs dump), `client_class` a tenant id.
  virtual void OnRequestStart(uint64_t key, int request_type, int client_class) {}
  virtual void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                            int client_class) {}

  // After-the-fact observations of a completed wait / hold with known
  // durations. These are the lowering targets of OnUsage: baselines that
  // measure durations themselves (wall-clocking the OnWaitBegin/OnWaitEnd
  // bracket) override these to credit the reported magnitudes instead — the
  // default bracket lowering is zero-width, so a clock-based controller
  // would otherwise observe every after-the-fact wait as 0 µs.
  virtual void OnWaitObserved(uint64_t key, ResourceId resource, TimeMicros waited) {
    OnWaitBegin(key, resource);
    OnWaitEnd(key, resource);
  }
  virtual void OnHoldObserved(uint64_t key, ResourceId resource, TimeMicros used) {
    OnGet(key, resource, 1);
    OnFree(key, resource, 1);
  }

  // Completed wait+use report in one call, used by CPU/IO adapters that learn
  // both durations only after the fact. The default forwards the magnitudes
  // to the observation hooks above so simple controllers see the durations,
  // not just the events; AtroposRuntime overrides with precise duration
  // accounting.
  virtual void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited, TimeMicros used) {
    if (waited > 0) {
      OnWaitObserved(key, resource, waited);
    }
    OnHoldObserved(key, resource, used);
  }

  // GetNext progress (§3.4).
  virtual void OnProgress(uint64_t key, uint64_t done, uint64_t total) {}

  // Admission decision for a new request (admission-control baselines).
  // Returning false sheds the request before it enters the server.
  virtual bool AdmitRequest(uint64_t key, int request_type, int client_class) { return true; }

  // Periodic control-loop entry point.
  virtual void Tick() {}

  // §4 re-execution gate: whether cancelled work may be retried now. The
  // default is permissive; Atropos requires sustained resource availability.
  virtual bool ReexecutionRecommended() const { return true; }

 protected:
  const std::unordered_map<ResourceId, ResourceClass>& resource_classes() const {
    return resource_classes_;
  }

 private:
  ResourceId next_generic_resource_id_ = 1;
  std::unordered_map<ResourceId, ResourceClass> resource_classes_;
};

// Controller that does nothing — the "Overload" (uncontrolled) baseline.
class NullController final : public OverloadController {
 public:
  std::string_view name() const override { return "none"; }
};

}  // namespace atropos

#endif  // SRC_ATROPOS_CONTROLLER_H_
