// Open-addressed key→slot index for the struct-of-arrays registries.
//
// Maps an application-provided 64-bit key (or a TaskId) to a dense slot
// number in a parallel array. Linear probing over a power-of-two table with
// backward-shift deletion keeps probes short without tombstones; emptiness is
// judged by a slot sentinel, so a key value of 0 is legal. Lookups, inserts,
// and erases are O(1) expected and allocation-free except when the live count
// crosses the load-factor high-water mark (first-touch growth) — steady-state
// register/free cycling at a stable population never reallocates, which is
// what keeps the ledger's event path allocation-free.
//
// Single-threaded by design, like the registries it indexes.

#ifndef SRC_ATROPOS_DENSE_INDEX_H_
#define SRC_ATROPOS_DENSE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atropos {

class DenseKeyIndex {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  explicit DenseKeyIndex(size_t initial_capacity = 16) {
    size_t cap = 16;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    entries_.assign(cap, Entry{});
    mask_ = cap - 1;
  }

  size_t size() const { return size_; }

  // atropos-lint: alloc-free
  uint32_t Find(uint64_t key) const {
    size_t i = Hash(key) & mask_;
    while (true) {
      const Entry& e = entries_[i];
      if (e.slot == kNotFound) {
        return kNotFound;
      }
      if (e.key == key) {
        return e.slot;
      }
      i = (i + 1) & mask_;
    }
  }

  // Inserts or overwrites. Allocation-free unless the load factor crosses
  // the growth threshold (population high-water mark).
  void Put(uint64_t key, uint32_t slot) {
    if ((size_ + 1) * 4 > entries_.size() * 3) {
      Grow();
    }
    size_t i = Hash(key) & mask_;
    while (true) {
      Entry& e = entries_[i];
      if (e.slot == kNotFound) {
        e.key = key;
        e.slot = slot;
        size_++;
        return;
      }
      if (e.key == key) {
        e.slot = slot;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  // Backward-shift deletion: no tombstones, probe chains stay contiguous.
  // atropos-lint: alloc-free
  bool Erase(uint64_t key) {
    size_t i = Hash(key) & mask_;
    while (true) {
      Entry& e = entries_[i];
      if (e.slot == kNotFound) {
        return false;
      }
      if (e.key == key) {
        break;
      }
      i = (i + 1) & mask_;
    }
    // Shift successors of the probe chain back over the hole.
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      const Entry& cand = entries_[j];
      if (cand.slot == kNotFound) {
        break;
      }
      const size_t home = Hash(cand.key) & mask_;
      // `cand` may move into the hole only if its home position does not lie
      // strictly between the hole and j (cyclically) — the standard
      // backward-shift condition.
      const bool movable = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (movable) {
        entries_[hole] = cand;
        hole = j;
      }
    }
    entries_[hole] = Entry{};
    size_--;
    return true;
  }

 private:
  struct Entry {
    uint64_t key = 0;
    uint32_t slot = kNotFound;  // kNotFound marks an empty table cell
  };

  // splitmix64 finalizer: full-avalanche mixing so sequential keys (task ids,
  // monotone request keys) spread across the table.
  static uint64_t Hash(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Grow() {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{});
    mask_ = entries_.size() - 1;
    size_ = 0;
    for (const Entry& e : old) {
      if (e.slot != kNotFound) {
        Put(e.key, e.slot);
      }
    }
  }

  std::vector<Entry> entries_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_DENSE_INDEX_H_
