// Contention-adaptive mutex with Malthusian waiter culling.
//
// A plain spinlock burns every waiting core; a plain blocking mutex pays a
// futex round-trip even when the owner is gone in nanoseconds. Malthusian
// locks (Dice, "Malthusian Locks", EuroSys'17) split the difference by
// CULLING the waiter population: at most ONE waiter spins actively on the
// lock word, and every surplus waiter is passivated into sleep-with-backoff.
// The active spinner gets spinlock-grade handoff latency; the passive crowd
// stops stealing cycles from the lock holder — which is exactly the property
// the intake path wants, because the holder of the registration lock may be
// the drainer mid-Tick, and delaying the drainer delays cancellation
// decisions for everyone.
//
// Usage profile in this codebase: ConcurrentFrontend's producer-registry
// guard. Registration is rare (thread birth) but bursty (a worker pool
// spinning up registers from every thread at once), and the drainer takes the
// same lock once per Tick — precisely the short-critical-section, occasional-
// convoy shape the culling targets.
//
// The implementation is deliberately simple: a CAS lock word, a single
// active-spinner census slot (CAS 0→1), exponential sleep backoff for
// passivated waiters, and relaxed counters for observability. No waiter
// queue, no handoff fairness guarantee — acquisition order under contention
// is unspecified, which callers accept (the registry guard has no ordering
// requirement). Annotated as a capability so clang's thread-safety analysis
// checks the lock discipline of guarded members.

#ifndef SRC_ATROPOS_MALTHUSIAN_MUTEX_H_
#define SRC_ATROPOS_MALTHUSIAN_MUTEX_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/common/thread_annotations.h"

namespace atropos {

class ATROPOS_CAPABILITY("mutex") MalthusianMutex {
 public:
  MalthusianMutex() = default;
  MalthusianMutex(const MalthusianMutex&) = delete;
  MalthusianMutex& operator=(const MalthusianMutex&) = delete;

  bool try_lock() ATROPOS_TRY_ACQUIRE(true) {
    uint32_t expected = 0;
    bool won = locked_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                               std::memory_order_relaxed);
    if (won) {
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
    return won;
  }

  void lock() ATROPOS_ACQUIRE() {
    if (try_lock()) {
      return;  // uncontended fast path: one CAS
    }
    LockSlow();
  }

  void unlock() ATROPOS_RELEASE() { locked_.store(0, std::memory_order_release); }

  struct Stats {
    uint64_t acquisitions = 0;  // successful lock()/try_lock() acquisitions
    uint64_t contended = 0;     // acquisitions that found the lock held
    uint64_t passivated = 0;    // waiters culled to sleep-backoff
  };
  // Racy-but-monotone snapshot, safe from any thread.
  Stats stats() const {
    Stats s;
    s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.passivated = passivated_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Bounded spin budget for the one active spinner before it, too, starts
  // yielding: a registration critical section is a few dozen instructions, so
  // a held lock that outlasts this budget means the holder was preempted —
  // spinning harder only delays its reschedule.
  static constexpr int kActiveSpinBudget = 256;

  void LockSlow() ATROPOS_NO_THREAD_SAFETY_ANALYSIS {
    contended_.fetch_add(1, std::memory_order_relaxed);
    // Claim the single active-spinner slot; losers are passivated.
    uint32_t vacant = 0;
    const bool active = spinner_census_.compare_exchange_strong(
        vacant, 1, std::memory_order_relaxed, std::memory_order_relaxed);
    if (!active) {
      passivated_.fetch_add(1, std::memory_order_relaxed);
    }
    int spins = 0;
    auto nap = std::chrono::microseconds(16);
    constexpr auto kMaxNap = std::chrono::microseconds(1024);
    for (;;) {
      // Test-and-test-and-set: only CAS when the lock word reads free, so
      // the spinner doesn't bounce the cache line while the lock is held.
      if (locked_.load(std::memory_order_relaxed) == 0) {
        uint32_t expected = 0;
        if (locked_.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
          break;
        }
      }
      if (active) {
        if (++spins >= kActiveSpinBudget) {
          spins = 0;
          std::this_thread::yield();  // holder likely preempted; let it run
        }
      } else {
        // Passive waiter: sleep with exponential backoff. Wake-ups are cheap
        // relative to the cycles a second spinner would burn, and the census
        // slot may have freed up — try to activate before napping again.
        std::this_thread::sleep_for(nap);
        if (nap < kMaxNap) {
          nap *= 2;
        }
      }
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (active) {
      spinner_census_.store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<uint32_t> locked_{0};
  std::atomic<uint32_t> spinner_census_{0};  // 1 while an active spinner exists
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> passivated_{0};
};

// RAII guard, annotated as a scoped capability (std::lock_guard would not
// carry the annotations through clang's analysis for a custom capability).
class ATROPOS_SCOPED_CAPABILITY MalthusianLockGuard {
 public:
  explicit MalthusianLockGuard(MalthusianMutex& mu) ATROPOS_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MalthusianLockGuard() ATROPOS_RELEASE() { mu_.unlock(); }

  MalthusianLockGuard(const MalthusianLockGuard&) = delete;
  MalthusianLockGuard& operator=(const MalthusianLockGuard&) = delete;

 private:
  MalthusianMutex& mu_;
};

}  // namespace atropos

#endif  // SRC_ATROPOS_MALTHUSIAN_MUTEX_H_
