// Paper-faithful integration facade (Fig 6 of the paper).
//
// The core library API (AtroposRuntime) is explicit about task identity and
// resource instances. Real applications, however, integrate through the thin
// C-style surface the paper presents: createCancel / freeCancel /
// setCancelAction and getResource / freeResource / slowByResource with an
// implicit "current task" (in the paper: the calling thread; here: a
// scope-managed current cancellable). This facade provides exactly that
// surface on top of a process-global runtime; the quickstart example uses it.

#ifndef SRC_ATROPOS_CAPI_H_
#define SRC_ATROPOS_CAPI_H_

#include <cstdint>

#include "src/atropos/runtime.h"

namespace atropos {

class ConcurrentFrontend;

// Fig 6b: the unified resource-type enum. Each type maps to one implicitly
// registered default resource instance in the global runtime.
enum class CApiResourceType { LOCK = 0, MEMORY = 1, QUEUE = 2 };

// Opaque handle for a registered cancellable task (Fig 6a).
struct Cancellable {
  uint64_t key;
};

// Installs the runtime the facade forwards to. Must be called before any
// other facade function; passing nullptr uninstalls. Tracing calls then feed
// the runtime directly, which is single-threaded: all facade calls must come
// from one thread (the simulator's discipline).
void InstallGlobalRuntime(AtroposRuntime* runtime);

// Multithreaded installation: tracing calls feed the frontend's per-thread
// SPSC rings instead of the runtime, so every facade function below becomes
// safe to call from any thread (the live-mode discipline; the paper keys the
// current task off the calling thread and so do we — the current-cancellable
// slot, scope chain, and retired-handle list are all thread-local).
// Setup-type calls (setCancelAction) still route to the wrapped runtime and
// stay single-threaded-before-producers-start. Passing nullptr uninstalls.
void InstallGlobalFrontend(ConcurrentFrontend* frontend);

AtroposRuntime* GlobalRuntime();

// The implicitly registered default resource instance behind a facade type
// (kInvalidResourceId when nothing is installed). Lets embedding code — the
// live server's worker pool, say — attribute waits against the same resource
// instance the capi tracing stream uses.
ResourceId CApiDefaultResource(CApiResourceType type);

// ---- Fig 6a: task scope & cancellation action -----------------------------
Cancellable* createCancel(uint64_t key);
void freeCancel(Cancellable* c);
void setCancelAction(void (*func)(uint64_t key));

// Sets the calling thread's task that subsequent tracing calls are attributed
// to (the paper uses the calling thread identity; simulated tasks set this
// explicitly). Returns the previous current task so scopes can nest.
Cancellable* SetCurrentCancellable(Cancellable* c);

// Scope-tracked variants used by CancellableScope. The facade mirrors the
// scope chain so freeCancel can tell when a handle is still referenced by a
// live scope (or is the current task): such a handle is retired lazily
// instead of deleted, so a nested scope's exit never restores a dangling
// pointer, and tracing against the freed task flows to the runtime — which
// counts it as an ignored event — rather than silently vanishing.
Cancellable* EnterCancellableScope(Cancellable* c);
void ExitCancellableScope(Cancellable* previous);

// RAII scope for the current task.
class CancellableScope {
 public:
  explicit CancellableScope(Cancellable* c) : previous_(EnterCancellableScope(c)) {}
  ~CancellableScope() { ExitCancellableScope(previous_); }
  CancellableScope(const CancellableScope&) = delete;
  CancellableScope& operator=(const CancellableScope&) = delete;

 private:
  Cancellable* previous_;
};

// ---- Fig 6b: resource tracing ----------------------------------------------
// `value` carries the operation magnitude: units acquired/released for get /
// free, and the stall duration in microseconds for slowByResource.
void getResource(long value, CApiResourceType rsc_type);
void freeResource(long value, CApiResourceType rsc_type);
void slowByResource(long value, CApiResourceType rsc_type);

// Bracketing extension to the paper's API: a stall reported only after it
// completes is invisible while a task is blocked behind a long holder, so
// long convoys would go undetected until they resolve. Bracketing the wait
// makes in-progress stalls count toward contention.
void slowByResourceBegin(CApiResourceType rsc_type);
void slowByResourceEnd(CApiResourceType rsc_type);

// Progress reporting for applications with quantifiable progress (§3.4).
void reportProgress(uint64_t done, uint64_t total);

}  // namespace atropos

#endif  // SRC_ATROPOS_CAPI_H_
