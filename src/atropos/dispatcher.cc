#include "src/atropos/dispatcher.h"

#include <algorithm>

#include "src/common/logging.h"

namespace atropos {

void CancelDispatcher::Dispatch(uint64_t key, double score, TimeMicros now) {
  if (cancelled_keys_.emplace(key, calm_windows_total_).second) {
    stats_->cancelled_keys_inserted++;
  }
  last_cancel_time_ = now;
  ever_cancelled_ = true;
  stats_->cancels_issued++;
  LOG_INFO("atropos: cancelling task key=%llu score=%.3f",
           static_cast<unsigned long long>(key), score);
  if (cancel_observer_) {
    cancel_observer_(key, score);
  }
  // Safe cancellation through the application's initiator (§3.6).
  if (cancel_action_) {
    cancel_action_(key);
  } else if (surface_ != nullptr) {
    surface_->CancelTask(key, CancelReason::kCulprit);
  }
}

void CancelDispatcher::ObserveWindow(bool resource_overload) {
  if (resource_overload) {
    calm_windows_ = 0;
    return;
  }
  calm_windows_++;
  calm_windows_total_++;
  // Age the §4 cancelled-key memo: an entry that survived
  // `reexec_calm_windows` calm windows since its cancellation belongs to a
  // client that never retried — without aging, such keys accumulate forever
  // under sustained traffic. The floor of one calm window keeps insertion
  // (always in an overload window) and eviction in distinct windows even when
  // reexec_calm_windows is 0.
  const uint64_t horizon = static_cast<uint64_t>(std::max(config_.reexec_calm_windows, 1));
  for (auto it = cancelled_keys_.begin(); it != cancelled_keys_.end();) {
    if (calm_windows_total_ - it->second >= horizon) {
      it = cancelled_keys_.erase(it);
      stats_->cancelled_keys_evicted++;
    } else {
      ++it;
    }
  }
}

bool CancelDispatcher::ConsumeCancelledKey(uint64_t key) {
  auto memo = cancelled_keys_.find(key);
  if (memo == cancelled_keys_.end()) {
    return false;
  }
  cancelled_keys_.erase(memo);
  stats_->cancelled_keys_consumed++;
  return true;
}

}  // namespace atropos
