#include "src/atropos/concurrent_frontend.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace atropos {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::atomic<uint64_t> g_next_frontend_id{1};

// Process-wide registry of live frontends, keyed by never-reused instance id.
// An exiting thread's TLS destructor resolves its bindings through this map
// so a binding to an already-destroyed frontend is simply skipped, never
// dereferenced. Function-local statics so the registry outlives any static
// frontend regardless of construction order.
std::mutex& FrontendRegistryMu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<uint64_t, ConcurrentFrontend*>& FrontendRegistry() {
  static std::unordered_map<uint64_t, ConcurrentFrontend*> map;
  return map;
}

}  // namespace

// One thread's auto-registered producer bindings. The destructor runs at
// thread exit — after the thread's last instrumentation call — and marks each
// bound producer retired so the drainer can reclaim its ring once emptied.
// Holding the registry lock across RetireProducer pins the frontend (its
// destructor unregisters under the same lock before members are torn down).
struct CapturedTlsBindings {
  struct Binding {
    uint64_t frontend_id;
    ConcurrentFrontend::Producer* producer;
  };
  std::vector<Binding> bindings;

  ~CapturedTlsBindings() {
    std::lock_guard<std::mutex> lock(FrontendRegistryMu());
    for (const Binding& b : bindings) {
      auto it = FrontendRegistry().find(b.frontend_id);
      if (it != FrontendRegistry().end()) {
        it->second->RetireProducer(b.producer);
      }
    }
  }
};

// ---- EventRing -------------------------------------------------------------

EventRing::EventRing(size_t capacity) : slots_(RoundUpPow2(std::max<size_t>(capacity, 2))) {
  mask_ = slots_.size() - 1;
}

bool EventRing::Push(const TraceEvent& ev) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = ev;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool EventRing::TryPop(TraceEvent* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) {
    return false;
  }
  *out = slots_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

size_t EventRing::PopBatch(TraceEvent* out, size_t max) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  const size_t n = std::min(static_cast<size_t>(tail - head), max);
  if (n == 0) {
    return 0;
  }
  // Slots in [head, head + n) were published by the release store of tail_,
  // so after the acquire load above they are plain memory: copy them in at
  // most two contiguous spans (the ring may wrap) and retire them with a
  // single release store of head_.
  const size_t start = static_cast<size_t>(head & mask_);
  const size_t first = std::min(n, slots_.size() - start);
  std::memcpy(out, slots_.data() + start, first * sizeof(TraceEvent));
  if (n > first) {
    std::memcpy(out + first, slots_.data(), (n - first) * sizeof(TraceEvent));
  }
  head_.store(head + n, std::memory_order_release);
  return n;
}

size_t EventRing::SizeApprox() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  return tail >= head ? static_cast<size_t>(tail - head) : 0;
}

// ---- Producer --------------------------------------------------------------

bool ConcurrentFrontend::Producer::Push(TraceEvent ev) {
  ev.time = clock_->NowMicros();
  return ring_.Push(ev);
}

bool ConcurrentFrontend::Producer::OnTaskRegistered(uint64_t key, bool background,
                                                    bool cancellable) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kTaskRegistered;
  ev.key = key;
  ev.background = background;
  ev.cancellable = cancellable;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnTaskFreed(uint64_t key) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kTaskFreed;
  ev.key = key;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnGet(uint64_t key, ResourceId resource, uint64_t amount) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kGet;
  ev.key = key;
  ev.resource = resource;
  ev.a = amount;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnFree(uint64_t key, ResourceId resource, uint64_t amount) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kFree;
  ev.key = key;
  ev.resource = resource;
  ev.a = amount;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnWaitBegin(uint64_t key, ResourceId resource) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kWaitBegin;
  ev.key = key;
  ev.resource = resource;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnWaitEnd(uint64_t key, ResourceId resource) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kWaitEnd;
  ev.key = key;
  ev.resource = resource;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnRequestStart(uint64_t key, int request_type,
                                                  int client_class) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kRequestStart;
  ev.key = key;
  ev.request_type = request_type;
  ev.client_class = client_class;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnRequestEnd(uint64_t key, TimeMicros latency,
                                                int request_type, int client_class) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kRequestEnd;
  ev.key = key;
  ev.a = latency;
  ev.request_type = request_type;
  ev.client_class = client_class;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnUsage(uint64_t key, ResourceId resource, TimeMicros waited,
                                           TimeMicros used) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kUsage;
  ev.key = key;
  ev.resource = resource;
  ev.a = waited;
  ev.b = used;
  return Push(ev);
}

bool ConcurrentFrontend::Producer::OnProgress(uint64_t key, uint64_t done, uint64_t total) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kProgress;
  ev.key = key;
  ev.a = done;
  ev.b = total;
  return Push(ev);
}

// ---- ConcurrentFrontend ----------------------------------------------------

ConcurrentFrontend::ConcurrentFrontend(Clock* clock, AtroposConfig config, Options options)
    : instance_id_(g_next_frontend_id.fetch_add(1, std::memory_order_relaxed)),
      clock_(clock),
      replay_clock_(clock),
      runtime_(&replay_clock_, config),
      options_(options) {
  std::lock_guard<std::mutex> lock(FrontendRegistryMu());
  FrontendRegistry().emplace(instance_id_, this);
}

ConcurrentFrontend::ConcurrentFrontend(Clock* clock, AtroposConfig config)
    : ConcurrentFrontend(clock, config, Options{}) {}

ConcurrentFrontend::~ConcurrentFrontend() {
  // Unregister before members are destroyed: an exiting thread holding the
  // registry lock may still be retiring a producer owned by this frontend.
  std::lock_guard<std::mutex> lock(FrontendRegistryMu());
  FrontendRegistry().erase(instance_id_);
}

ConcurrentFrontend::Producer* ConcurrentFrontend::RegisterProducer() {
  MalthusianLockGuard lock(registry_mu_);
  producers_.push_back(
      std::unique_ptr<Producer>(new Producer(clock_, options_.ring_capacity)));
  producers_seen_++;
  return producers_.back().get();
}

size_t ConcurrentFrontend::live_producer_count() {
  MalthusianLockGuard lock(registry_mu_);
  return producers_.size();
}

ConcurrentFrontend::Producer* ConcurrentFrontend::ThisThreadProducer() {
  // Keyed by a never-reused instance id so a binding to a destroyed frontend
  // can go stale but never alias a live one. The wrapper's destructor retires
  // the bindings at thread exit (see CapturedTlsBindings).
  thread_local CapturedTlsBindings tls;
  for (const CapturedTlsBindings::Binding& b : tls.bindings) {
    if (b.frontend_id == instance_id_) {
      return b.producer;
    }
  }
  Producer* p = RegisterProducer();
  tls.bindings.push_back(CapturedTlsBindings::Binding{instance_id_, p});
  return p;
}

void ConcurrentFrontend::OnTaskRegistered(uint64_t key, bool background, bool cancellable) {
  ThisThreadProducer()->OnTaskRegistered(key, background, cancellable);
}
void ConcurrentFrontend::OnTaskFreed(uint64_t key) {
  ThisThreadProducer()->OnTaskFreed(key);
}
void ConcurrentFrontend::OnGet(uint64_t key, ResourceId resource, uint64_t amount) {
  ThisThreadProducer()->OnGet(key, resource, amount);
}
void ConcurrentFrontend::OnFree(uint64_t key, ResourceId resource, uint64_t amount) {
  ThisThreadProducer()->OnFree(key, resource, amount);
}
void ConcurrentFrontend::OnWaitBegin(uint64_t key, ResourceId resource) {
  ThisThreadProducer()->OnWaitBegin(key, resource);
}
void ConcurrentFrontend::OnWaitEnd(uint64_t key, ResourceId resource) {
  ThisThreadProducer()->OnWaitEnd(key, resource);
}
void ConcurrentFrontend::OnRequestStart(uint64_t key, int request_type, int client_class) {
  ThisThreadProducer()->OnRequestStart(key, request_type, client_class);
}
void ConcurrentFrontend::OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                                      int client_class) {
  ThisThreadProducer()->OnRequestEnd(key, latency, request_type, client_class);
}
void ConcurrentFrontend::OnUsage(uint64_t key, ResourceId resource, TimeMicros waited,
                                 TimeMicros used) {
  ThisThreadProducer()->OnUsage(key, resource, waited, used);
}
void ConcurrentFrontend::OnProgress(uint64_t key, uint64_t done, uint64_t total) {
  ThisThreadProducer()->OnProgress(key, done, total);
}

void ConcurrentFrontend::BindMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ring_depth_gauge_ = drained_gauge_ = dropped_gauge_ = producers_gauge_ = nullptr;
    return;
  }
  ring_depth_gauge_ = metrics->GetGauge("intake.ring_depth");
  drained_gauge_ = metrics->GetGauge("intake.drained_per_tick");
  dropped_gauge_ = metrics->GetGauge("intake.dropped_events");
  producers_gauge_ = metrics->GetGauge("intake.producers");
}

void ConcurrentFrontend::Apply(const TraceEvent& ev) {
  replay_clock_.BeginReplay(ev.time);
  switch (ev.kind) {
    case TraceEventKind::kTaskRegistered:
      runtime_.OnTaskRegistered(ev.key, ev.background, ev.cancellable);
      break;
    case TraceEventKind::kTaskFreed:
      runtime_.OnTaskFreed(ev.key);
      break;
    case TraceEventKind::kGet:
      runtime_.OnGet(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kFree:
      runtime_.OnFree(ev.key, ev.resource, ev.a);
      break;
    case TraceEventKind::kWaitBegin:
      runtime_.OnWaitBegin(ev.key, ev.resource);
      break;
    case TraceEventKind::kWaitEnd:
      runtime_.OnWaitEnd(ev.key, ev.resource);
      break;
    case TraceEventKind::kRequestStart:
      runtime_.OnRequestStart(ev.key, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kRequestEnd:
      runtime_.OnRequestEnd(ev.key, ev.a, ev.request_type, ev.client_class);
      break;
    case TraceEventKind::kUsage:
      runtime_.OnUsage(ev.key, ev.resource, ev.a, ev.b);
      break;
    case TraceEventKind::kProgress:
      runtime_.OnProgress(ev.key, ev.a, ev.b);
      break;
  }
}

void ConcurrentFrontend::Tick() {
  drain_buf_.clear();
  uint64_t max_depth = 0;
  uint64_t dropped = 0;
  size_t producer_count = 0;
  uint64_t seen = 0;
  uint64_t retired_count = 0;
  {
    MalthusianLockGuard lock(registry_mu_);
    size_t keep = 0;
    for (size_t i = 0; i < producers_.size(); i++) {
      std::unique_ptr<Producer>& p = producers_[i];
      // Retirement is observed *before* draining: the owning thread's last
      // Push happens-before its TLS destructor's release store, so seeing
      // retired==true here guarantees this drain empties the ring for good.
      // A flip to retired *after* this load is deliberately ignored until
      // the next Tick — removing on a post-drain observation could free a
      // ring that still holds events pushed just before the exit.
      const bool retired = p->retired_.load(std::memory_order_acquire);
      const size_t before = drain_buf_.size();
      // Batched drain: each PopBatch is one acquire/release pair and at most
      // two memcpy spans, instead of a fence pair per event.
      constexpr size_t kChunk = 256;
      TraceEvent chunk[kChunk];
      size_t n;
      while ((n = p->ring_.PopBatch(chunk, kChunk)) > 0) {
        drain_buf_.insert(drain_buf_.end(), chunk, chunk + n);
      }
      max_depth = std::max<uint64_t>(max_depth, drain_buf_.size() - before);
      if (retired) {
        retired_dropped_ += p->ring_.dropped();
        producers_retired_++;
      } else {
        dropped += p->ring_.dropped();
        producers_[keep++] = std::move(p);
      }
    }
    producers_.resize(keep);
    dropped += retired_dropped_;
    producer_count = producers_.size();
    seen = producers_seen_;
    retired_count = producers_retired_;
  }

  // Stable merge: rings are FIFO with per-ring monotone stamps, so a stable
  // sort by time yields global timestamp order with ties broken by producer
  // registration order — the same deterministic order the determinism test
  // feeds a bare runtime in.
  std::stable_sort(drain_buf_.begin(), drain_buf_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
  for (const TraceEvent& ev : drain_buf_) {
    Apply(ev);
  }
  replay_clock_.EndReplay();

  intake_.drained_last_tick = drain_buf_.size();
  intake_.drained_total += drain_buf_.size();
  intake_.dropped_total = dropped;
  intake_.max_ring_depth = max_depth;
  intake_.producers = producer_count;
  intake_.producers_seen = seen;
  intake_.producers_retired = retired_count;
  if (ring_depth_gauge_ != nullptr) {
    ring_depth_gauge_->Set(static_cast<double>(max_depth));
    drained_gauge_->Set(static_cast<double>(intake_.drained_last_tick));
    dropped_gauge_->Set(static_cast<double>(dropped));
    producers_gauge_->Set(static_cast<double>(producer_count));
  }

  runtime_.Tick();
}

}  // namespace atropos
