// Core identifier and enum types of the Atropos framework.

#ifndef SRC_ATROPOS_TYPES_H_
#define SRC_ATROPOS_TYPES_H_

#include <cstdint>
#include <string_view>

namespace atropos {

// Identifies one registered cancellable task (paper §3.1). Assigned by the
// runtime; distinct from the application-provided key.
using TaskId = uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

// Identifies one registered application resource instance (e.g. "the buffer
// pool", "table locks", "the InnoDB ticket queue").
using ResourceId = uint32_t;
inline constexpr ResourceId kInvalidResourceId = 0;

// The unified application-resource classes of §3.2. kCpu/kIo extend the
// paper's three classes to its "system resource" cases (c8, c12), which the
// paper monitors through cgroups; here the simulated devices report through
// the same tracing interface.
enum class ResourceClass {
  kLock = 0,    // synchronization resources
  kMemory = 1,  // memory pools / caches
  kQueue = 2,   // application-managed task queues
  kCpu = 3,     // system CPU
  kIo = 4,      // system I/O
};

inline constexpr int kNumResourceClasses = 5;

std::string_view ResourceClassName(ResourceClass cls);

}  // namespace atropos

#endif  // SRC_ATROPOS_TYPES_H_
