// Pluggable decision pipeline (paper §3.3–3.5; Fig 13 ablations).
//
// The control loop is explicitly staged: DetectionStage flags suspected
// overload from end-to-end signals (§3.3), EstimationStage confirms which
// resource is the bottleneck and prices every candidate's gain (§3.4), and
// SelectionPolicy picks the victim (§3.5). Each stage is an interface; the
// shipped implementations wrap the existing detector/estimator/policies, and
// the Fig-13 ablation variants are alternative SelectionPolicy
// implementations injected by the controller factory — not enum special
// cases inside the runtime.
//
// A DecisionPipeline bundles one stage of each kind; AtroposRuntime owns one
// per instance, and RuntimeGroup builds one per shard from a shared factory
// (shared implementations, private per-shard stage state).

#ifndef SRC_ATROPOS_PIPELINE_H_
#define SRC_ATROPOS_PIPELINE_H_

#include <memory>
#include <string_view>

#include "src/atropos/config.h"
#include "src/atropos/detector.h"
#include "src/atropos/estimator.h"
#include "src/atropos/ledger.h"
#include "src/atropos/policy.h"

namespace atropos {

// ---- Stage interfaces ------------------------------------------------------

// §3.3: turns one closed window's end-to-end sample into an overload signal.
class DetectionStage {
 public:
  virtual ~DetectionStage() = default;
  virtual std::string_view name() const = 0;
  virtual OverloadDetector::Signal OnWindow(const OverloadDetector::WindowSample& sample) = 0;
  // Whether the latency baseline has been learned; gates the stall-convoy
  // signal and keeps the estimator in calibration mode.
  virtual bool calibrated() const = 0;
  // Latency target: baseline p99 * (1 + slo_latency_increase).
  virtual TimeMicros slo_latency() const = 0;
};

// §3.4: prices each resource's contention and each candidate's gain.
class EstimationStage {
 public:
  virtual ~EstimationStage() = default;
  virtual std::string_view name() const = 0;
  virtual void SetCalibrating(bool calibrating) = 0;
  virtual Estimator::Output Estimate(TaskLedger& ledger, TimeMicros exec_time,
                                     TimeMicros window_start, TimeMicros now) = 0;
};

// §3.5: picks the victim among the estimator's candidates.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual PolicyDecision Select(const PolicyInput& input, PolicyExplain* explain) = 0;
};

// ---- Shipped implementations -----------------------------------------------

// Breakwater-style end-to-end detection (§3.3) over an OverloadDetector.
class BreakwaterDetectionStage final : public DetectionStage {
 public:
  explicit BreakwaterDetectionStage(const AtroposConfig& config) : detector_(config) {}
  std::string_view name() const override { return "breakwater"; }
  OverloadDetector::Signal OnWindow(const OverloadDetector::WindowSample& sample) override {
    return detector_.OnWindow(sample);
  }
  bool calibrated() const override { return detector_.calibrated(); }
  TimeMicros slo_latency() const override { return detector_.slo_latency(); }
  OverloadDetector& detector() { return detector_; }
  const OverloadDetector& detector() const { return detector_; }

 private:
  OverloadDetector detector_;
};

// Future-gain estimation (§3.4) over the window books of a TaskLedger.
class GainEstimationStage final : public EstimationStage {
 public:
  explicit GainEstimationStage(const AtroposConfig& config) : estimator_(config) {}
  std::string_view name() const override { return "gain"; }
  void SetCalibrating(bool calibrating) override { estimator_.SetCalibrating(calibrating); }
  Estimator::Output Estimate(TaskLedger& ledger, TimeMicros exec_time,
                             TimeMicros window_start, TimeMicros now) override {
    return estimator_.Estimate(ledger, exec_time, window_start, now);
  }

 private:
  Estimator estimator_;
};

// Algorithm 1: Pareto non-dominated filter + contention-weighted
// scalarization.
class MultiObjectivePolicy final : public SelectionPolicy {
 public:
  std::string_view name() const override { return "multi_objective"; }
  PolicyDecision Select(const PolicyInput& input, PolicyExplain* explain) override {
    return SelectMultiObjective(input, explain);
  }
};

// Fig 13 baseline 1: greedy — highest gain on the single most contended
// resource.
class HeuristicPolicy final : public SelectionPolicy {
 public:
  std::string_view name() const override { return "heuristic"; }
  PolicyDecision Select(const PolicyInput& input, PolicyExplain* explain) override {
    return SelectHeuristic(input, explain);
  }
};

// Fig 13 baseline 2: multi-objective shape, but scores use current usage
// instead of predicted future gain.
class CurrentUsagePolicy final : public SelectionPolicy {
 public:
  std::string_view name() const override { return "current_usage"; }
  PolicyDecision Select(const PolicyInput& input, PolicyExplain* explain) override {
    return SelectCurrentUsage(input, explain);
  }
};

// ---- Pipeline --------------------------------------------------------------

struct DecisionPipeline {
  std::unique_ptr<DetectionStage> detection;
  std::unique_ptr<EstimationStage> estimation;
  std::unique_ptr<SelectionPolicy> selection;

  bool complete() const {
    return detection != nullptr && estimation != nullptr && selection != nullptr;
  }

  // The paper's pipeline: Breakwater detection, gain estimation, and the
  // selection policy named by config.policy.
  static DecisionPipeline Default(const AtroposConfig& config);

  // The Fig 13 policy stages by ablation kind.
  static std::unique_ptr<SelectionPolicy> MakeSelectionPolicy(PolicyKind kind);
};

}  // namespace atropos

#endif  // SRC_ATROPOS_PIPELINE_H_
