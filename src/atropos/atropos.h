// Umbrella header for the Atropos overload-control library.
//
// Atropos mitigates application resource overload by identifying the culprit
// task that monopolizes a contended application resource and cancelling it
// through the application's own safe cancellation initiator — instead of
// dropping the victim requests blocked behind it.
//
// Typical integration:
//
//   AtroposConfig config;
//   AtroposRuntime runtime(clock, config);
//   ResourceId pool = runtime.RegisterResource("buffer_pool", ResourceClass::kMemory);
//   runtime.SetCancelAction([&](uint64_t key) { app.Kill(key); });
//
//   // per task:
//   runtime.OnTaskRegistered(key, /*background=*/false);
//   runtime.OnGet(key, pool, pages);         // getResource
//   runtime.OnWaitBegin(key, pool); ...      // slowByResource bracketing
//   runtime.OnFree(key, pool, pages);        // freeResource
//   runtime.OnTaskFreed(key);
//
//   // control loop, once per window:
//   runtime.Tick();

#ifndef SRC_ATROPOS_ATROPOS_H_
#define SRC_ATROPOS_ATROPOS_H_

#include "src/atropos/accounting.h"   // IWYU pragma: export
#include "src/atropos/capi.h"         // IWYU pragma: export
#include "src/atropos/config.h"       // IWYU pragma: export
#include "src/atropos/controller.h"   // IWYU pragma: export
#include "src/atropos/detector.h"     // IWYU pragma: export
#include "src/atropos/estimator.h"    // IWYU pragma: export
#include "src/atropos/policy.h"       // IWYU pragma: export
#include "src/atropos/runtime.h"      // IWYU pragma: export
#include "src/atropos/task_tree.h"    // IWYU pragma: export
#include "src/atropos/types.h"        // IWYU pragma: export

#endif  // SRC_ATROPOS_ATROPOS_H_
