#include "src/atropos/runtime_group.h"

#include <algorithm>
#include <utility>

namespace atropos {

RuntimeGroup::RuntimeGroup(Clock* clock, AtroposConfig config, size_t shard_count,
                           StageFactory factory, KeyRouter router) {
  if (shard_count == 0) {
    shard_count = 1;
  }
  if (!factory) {
    factory = [](const AtroposConfig& c) { return DecisionPipeline::Default(c); };
  }
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<AtroposRuntime>(clock, config, factory(config)));
  }
  if (router) {
    router_ = std::move(router);
  } else {
    const size_t n = shards_.size();
    router_ = [n](uint64_t key) { return static_cast<size_t>(key % n); };
  }
}

void RuntimeGroup::SetCancelAction(std::function<void(uint64_t)> initiator) {
  for (auto& shard : shards_) {
    shard->SetCancelAction(initiator);
  }
}

void RuntimeGroup::SetControlSurface(ControlSurface* surface) {
  for (auto& shard : shards_) {
    shard->SetControlSurface(surface);
  }
}

void RuntimeGroup::SetRecorder(FlightRecorder* recorder) {
  for (auto& shard : shards_) {
    shard->SetRecorder(recorder);
  }
}

ResourceId RuntimeGroup::RegisterResource(std::string name, ResourceClass cls) {
  ResourceId id = kInvalidResourceId;
  for (auto& shard : shards_) {
    id = shard->RegisterResource(name, cls);
  }
  return id;
}

void RuntimeGroup::Tick() {
  for (auto& shard : shards_) {
    shard->Tick();
  }
}

bool RuntimeGroup::ReexecutionRecommended() const {
  for (const auto& shard : shards_) {
    if (!shard->ReexecutionRecommended()) {
      return false;
    }
  }
  return true;
}

std::vector<ResourceAudit> RuntimeGroup::AuditProcessWide() const {
  std::vector<ResourceAudit> total;
  for (const auto& shard : shards_) {
    std::vector<ResourceAudit> rows = shard->AuditAccounting();
    for (ResourceAudit& row : rows) {
      auto it = std::find_if(total.begin(), total.end(),
                             [&](const ResourceAudit& t) { return t.id == row.id; });
      if (it == total.end()) {
        total.push_back(std::move(row));
        continue;
      }
      it->acquired += row.acquired;
      it->released += row.released;
      it->leaked += row.leaked;
      it->overfreed += row.overfreed;
      it->live_held += row.live_held;
    }
  }
  return total;
}

}  // namespace atropos
