#include "src/mining/replay.h"

#include <cstdarg>
#include <cstdio>

#include "src/diagnose/diagnoser.h"
#include "src/mining/miner.h"
#include "src/testing/oracles.h"

namespace atropos {

namespace {

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

ReplayReport ReplayCorpus(const std::vector<CorpusEntry>& entries, const ReplayOptions& options) {
  ReplayReport report;
  auto fail = [&report](const std::string& name, std::string what) {
    report.failures.push_back(ReplayFailure{name, std::move(what)});
  };

  for (const CorpusEntry& entry : entries) {
    if (options.limit > 0 && report.replayed >= options.limit) {
      break;
    }
    report.replayed++;

    auto plan = PlanForEntry(entry);
    if (!plan.ok()) {
      fail(entry.name, plan.status().message());
      continue;
    }
    ScenarioPair pair = RunScenarioPair(plan.value());

    // (a) digest stability.
    if (pair.treatment.digest != entry.digest) {
      fail(entry.name, Format("treatment digest %016llx != recorded %016llx",
                              (unsigned long long)pair.treatment.digest,
                              (unsigned long long)entry.digest));
    }
    if (pair.baseline.digest != entry.baseline_digest) {
      fail(entry.name, Format("baseline digest %016llx != recorded %016llx",
                              (unsigned long long)pair.baseline.digest,
                              (unsigned long long)entry.baseline_digest));
    }
    if (options.check_oracles) {
      if (!pair.baseline.ok()) {
        fail(entry.name, "baseline run violates oracles:\n" +
                             FormatViolations(pair.baseline.violations));
      }
      if (!pair.treatment.ok()) {
        fail(entry.name, "treatment run violates oracles:\n" +
                             FormatViolations(pair.treatment.violations));
      }
    }
    if (pair.treatment.stats.cancels_issued != entry.cancels) {
      fail(entry.name, Format("cancels %llu != recorded %llu",
                              (unsigned long long)pair.treatment.stats.cancels_issued,
                              (unsigned long long)entry.cancels));
    }

    // (b) attribution agreement, recomputed from the fresh baseline trace.
    Diagnosis diagnosis = DiagnoseTrace(pair.baseline.events);
    std::string estimator = EstimatorBlamedClass(pair.baseline.events);
    if (diagnosis.blamed_class != entry.blamed_class) {
      fail(entry.name, "diagnoser blamed \"" + diagnosis.blamed_class +
                           "\" but the entry records \"" + entry.blamed_class + "\"");
    }
    if (estimator != entry.estimator_class) {
      fail(entry.name, "estimator verdict \"" + estimator + "\" but the entry records \"" +
                           entry.estimator_class + "\"");
    }
    bool agreement = diagnosis.blamed_class == estimator;
    if (agreement != entry.agreement) {
      fail(entry.name, Format("agreement recomputed as %s but recorded as %s",
                              agreement ? "yes" : "no", entry.agreement ? "yes" : "no"));
    }
    if (entry.agreement) {
      report.agreements++;
    } else {
      report.disagreements++;
    }
  }

  int judged = report.agreements + report.disagreements;
  report.agreement_rate = judged > 0 ? static_cast<double>(report.agreements) / judged : 1.0;
  if (judged > 0 && report.agreement_rate < options.require_agreement) {
    report.failures.push_back(ReplayFailure{
        "<corpus>", Format("agreement rate %.3f below required %.3f (%d/%d entries)",
                           report.agreement_rate, options.require_agreement, report.agreements,
                           judged)});
  }
  return report;
}

}  // namespace atropos
