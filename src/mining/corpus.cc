#include "src/mining/corpus.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>

namespace atropos {

namespace {

// Shortest round-trip decimal form, so serialize(parse(x)) is byte-stable.
std::string FormatDouble(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, end);
}

std::string FormatHex64(uint64_t v) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

// "-" stands for the empty string in single-token fields.
std::string OrDash(const std::string& s) { return s.empty() ? "-" : s; }

Status LineError(size_t line_no, std::string what) {
  char buf[32];
  snprintf(buf, sizeof(buf), "line %zu: ", line_no);
  return Status::InvalidArgument(buf + std::move(what));
}

bool ParseU64Token(std::string_view token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v, 10);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseHex64Token(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 16) {
    return false;
  }
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v, 16);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseIntToken(std::string_view token, int* out) {
  if (token.empty()) {
    return false;
  }
  int v = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v, 10);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleToken(std::string_view token, double* out) {
  std::string copy(token);
  char* end = nullptr;
  double v = strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

std::string FormatKeepRanges(const std::vector<size_t>& keep) {
  if (keep.empty()) {
    return "-";
  }
  std::string out;
  char buf[48];
  size_t i = 0;
  while (i < keep.size()) {
    size_t j = i;
    while (j + 1 < keep.size() && keep[j + 1] == keep[j] + 1) {
      j++;
    }
    if (!out.empty()) {
      out += ',';
    }
    if (j > i) {
      snprintf(buf, sizeof(buf), "%zu-%zu", keep[i], keep[j]);
    } else {
      snprintf(buf, sizeof(buf), "%zu", keep[i]);
    }
    out += buf;
    i = j + 1;
  }
  return out;
}

StatusOr<std::vector<size_t>> ParseKeepRanges(std::string_view text) {
  std::vector<size_t> keep;
  if (text == "-") {
    return keep;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    std::string_view run = text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                                            : comma - pos);
    uint64_t lo = 0;
    uint64_t hi = 0;
    size_t dash = run.find('-');
    if (dash == std::string_view::npos) {
      if (!ParseU64Token(run, &lo)) {
        return Status::InvalidArgument("bad keep index: " + std::string(run));
      }
      hi = lo;
    } else {
      if (!ParseU64Token(run.substr(0, dash), &lo) || !ParseU64Token(run.substr(dash + 1), &hi) ||
          hi < lo) {
        return Status::InvalidArgument("bad keep range: " + std::string(run));
      }
    }
    if (!keep.empty() && lo <= keep.back()) {
      return Status::InvalidArgument("keep indices must be strictly ascending");
    }
    for (uint64_t v = lo; v <= hi; v++) {
      keep.push_back(static_cast<size_t>(v));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  return keep;
}

std::string SerializeEntry(const CorpusEntry& entry) {
  std::string out;
  char buf[64];
  out += "scenario " + entry.name + "\n";
  snprintf(buf, sizeof(buf), "seed %llu\n", (unsigned long long)entry.seed);
  out += buf;
  out += "mode " + entry.mode + "\n";
  out += "load_scale " + FormatDouble(entry.load_scale) + "\n";
  snprintf(buf, sizeof(buf), "drop_free %d\n", entry.drop_free);
  out += buf;
  out += std::string("extended_modes ") + (entry.extended_modes ? "1" : "0") + "\n";
  snprintf(buf, sizeof(buf), "force_mode %d\n", entry.force_mode);
  out += buf;
  out += "keep " + FormatKeepRanges(entry.keep) + "\n";
  out += std::string("quiet_faults ") + (entry.quiet_faults ? "1" : "0") + "\n";
  snprintf(buf, sizeof(buf), "requests %llu\n", (unsigned long long)entry.requests);
  out += buf;
  out += "digest " + FormatHex64(entry.digest) + "\n";
  out += "baseline_digest " + FormatHex64(entry.baseline_digest) + "\n";
  snprintf(buf, sizeof(buf), "cancels %llu\n", (unsigned long long)entry.cancels);
  out += buf;
  out += "p99_ratio " + FormatDouble(entry.p99_ratio) + "\n";
  out += "blamed_class " + OrDash(entry.blamed_class) + "\n";
  out += "estimator_class " + OrDash(entry.estimator_class) + "\n";
  out += std::string("agreement ") + (entry.agreement ? "yes" : "no") + "\n";
  out += "note " + OrDash(entry.note) + "\n";
  out += "end\n";
  return out;
}

std::string SerializeCorpus(const std::vector<CorpusEntry>& entries) {
  std::string out(kCorpusHeader);
  out += "\n";
  for (const CorpusEntry& entry : entries) {
    out += "\n";
    out += SerializeEntry(entry);
  }
  return out;
}

StatusOr<std::vector<CorpusEntry>> ParseCorpus(std::string_view text) {
  // Split into lines (tolerating a missing trailing newline and CRLF).
  std::vector<std::string_view> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    lines.push_back(line);
    if (nl == std::string_view::npos) {
      break;
    }
    pos = nl + 1;
  }

  if (lines.empty() || lines[0].empty()) {
    return Status::InvalidArgument("line 1: missing corpus header (want \"" +
                                   std::string(kCorpusHeader) + "\")");
  }
  if (lines[0] != kCorpusHeader) {
    if (lines[0].rfind("atropos-corpus", 0) == 0) {
      return Status::InvalidArgument("line 1: unsupported corpus schema version \"" +
                                     std::string(lines[0]) + "\" (want \"" +
                                     std::string(kCorpusHeader) + "\")");
    }
    return Status::InvalidArgument("line 1: truncated or malformed corpus header \"" +
                                   std::string(lines[0]) + "\"");
  }

  std::vector<CorpusEntry> entries;
  std::set<std::string> names;
  size_t i = 1;
  while (i < lines.size()) {
    if (lines[i].empty()) {
      i++;
      continue;
    }
    size_t start_line = i + 1;
    std::string_view line = lines[i];
    if (line.rfind("scenario ", 0) != 0) {
      return LineError(start_line, "expected \"scenario <name>\", got \"" + std::string(line) + "\"");
    }
    CorpusEntry entry;
    entry.name = std::string(line.substr(strlen("scenario ")));
    if (entry.name.empty()) {
      return LineError(start_line, "empty scenario name");
    }
    if (!names.insert(entry.name).second) {
      return LineError(start_line, "duplicate scenario name \"" + entry.name + "\"");
    }
    i++;

    std::set<std::string> seen;
    bool ended = false;
    for (; i < lines.size(); i++) {
      size_t line_no = i + 1;
      std::string_view body = lines[i];
      if (body == "end") {
        ended = true;
        i++;
        break;
      }
      if (body.empty()) {
        return LineError(line_no, "blank line inside scenario \"" + entry.name + "\"");
      }
      size_t space = body.find(' ');
      if (space == std::string_view::npos) {
        return LineError(line_no, "expected \"<field> <value>\", got \"" + std::string(body) + "\"");
      }
      std::string key(body.substr(0, space));
      std::string_view value = body.substr(space + 1);
      if (!seen.insert(key).second) {
        return LineError(line_no, "duplicate field \"" + key + "\"");
      }
      bool ok = true;
      if (key == "seed") {
        ok = ParseU64Token(value, &entry.seed);
      } else if (key == "mode") {
        entry.mode = std::string(value);
        FuzzAppMode mode;
        ok = ParseFuzzAppMode(entry.mode, &mode);
      } else if (key == "load_scale") {
        ok = ParseDoubleToken(value, &entry.load_scale);
      } else if (key == "drop_free") {
        ok = ParseIntToken(value, &entry.drop_free);
      } else if (key == "extended_modes") {
        ok = value == "0" || value == "1";
        entry.extended_modes = value == "1";
      } else if (key == "force_mode") {
        ok = ParseIntToken(value, &entry.force_mode);
      } else if (key == "keep") {
        auto keep = ParseKeepRanges(value);
        if (!keep.ok()) {
          return LineError(line_no, keep.status().message());
        }
        entry.keep = std::move(keep).value();
      } else if (key == "quiet_faults") {
        ok = value == "0" || value == "1";
        entry.quiet_faults = value == "1";
      } else if (key == "requests") {
        ok = ParseU64Token(value, &entry.requests);
      } else if (key == "digest") {
        ok = ParseHex64Token(value, &entry.digest);
      } else if (key == "baseline_digest") {
        ok = ParseHex64Token(value, &entry.baseline_digest);
      } else if (key == "cancels") {
        ok = ParseU64Token(value, &entry.cancels);
      } else if (key == "p99_ratio") {
        ok = ParseDoubleToken(value, &entry.p99_ratio);
      } else if (key == "blamed_class") {
        entry.blamed_class = value == "-" ? "" : std::string(value);
      } else if (key == "estimator_class") {
        entry.estimator_class = value == "-" ? "" : std::string(value);
      } else if (key == "agreement") {
        ok = value == "yes" || value == "no";
        entry.agreement = value == "yes";
      } else if (key == "note") {
        entry.note = value == "-" ? "" : std::string(value);
      } else {
        return LineError(line_no, "unknown field \"" + key + "\"");
      }
      if (!ok) {
        return LineError(line_no,
                         "bad value for \"" + key + "\": \"" + std::string(value) + "\"");
      }
    }
    if (!ended) {
      return LineError(lines.size(), "scenario \"" + entry.name + "\" missing \"end\"");
    }
    for (const char* required :
         {"seed", "mode", "load_scale", "drop_free", "extended_modes", "force_mode", "keep",
          "quiet_faults", "requests", "digest", "baseline_digest", "cancels", "p99_ratio",
          "blamed_class", "estimator_class", "agreement", "note"}) {
      if (seen.count(required) == 0) {
        return LineError(start_line,
                         "scenario \"" + entry.name + "\" missing field \"" + required + "\"");
      }
    }
    if (!entry.agreement && entry.note.empty()) {
      return LineError(start_line, "scenario \"" + entry.name +
                                       "\" has agreement no but no annotation note");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

StatusOr<std::vector<CorpusEntry>> LoadCorpusDir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("corpus directory not found: " + dir);
  }
  std::vector<std::string> shards;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".corpus") {
      shards.push_back(de.path().string());
    }
  }
  if (ec) {
    return Status::Internal("listing " + dir + ": " + ec.message());
  }
  std::sort(shards.begin(), shards.end());

  std::vector<CorpusEntry> all;
  std::set<std::string> names;
  for (const std::string& shard : shards) {
    FILE* f = fopen(shard.c_str(), "rb");
    if (f == nullptr) {
      return Status::NotFound("cannot open " + shard);
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    fclose(f);
    auto parsed = ParseCorpus(text);
    if (!parsed.ok()) {
      return Status::InvalidArgument(shard + ": " + parsed.status().message());
    }
    for (CorpusEntry& entry : parsed.value()) {
      if (!names.insert(entry.name).second) {
        return Status::InvalidArgument(shard + ": scenario \"" + entry.name +
                                       "\" duplicates a name from another shard");
      }
      all.push_back(std::move(entry));
    }
  }
  return all;
}

Status WriteCorpusShards(const std::string& dir, const std::vector<CorpusEntry>& entries) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  std::map<std::string, std::vector<CorpusEntry>> by_mode;
  for (const CorpusEntry& entry : entries) {
    by_mode[entry.mode].push_back(entry);
  }
  for (auto& [mode, shard] : by_mode) {
    std::sort(shard.begin(), shard.end(),
              [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });
    std::string text = SerializeCorpus(shard);
    std::string path = dir + "/" + mode + ".corpus";
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("cannot write " + path);
    }
    size_t written = fwrite(text.data(), 1, text.size(), f);
    fclose(f);
    if (written != text.size()) {
      return Status::Internal("short write to " + path);
    }
  }
  return Status::Ok();
}

StatusOr<FuzzPlan> PlanForEntry(const CorpusEntry& entry) {
  FuzzPlanOptions options;
  options.load_scale = entry.load_scale;
  options.drop_free_request_type = entry.drop_free;
  options.extended_modes = entry.extended_modes;
  options.force_mode = entry.force_mode;
  FuzzPlan plan = PlanFromSeed(entry.seed, options);
  if (entry.quiet_faults) {
    plan.faults.cancel_delay = 0;
    plan.faults.extra_ticks.clear();
  }
  if (std::string(FuzzAppModeName(plan.mode)) != entry.mode) {
    return Status::FailedPrecondition(
        "scenario " + entry.name + ": recorded mode " + entry.mode +
        " but seed derives " + std::string(FuzzAppModeName(plan.mode)) +
        " — plan derivation drifted; re-mine the corpus");
  }
  if (!entry.keep.empty()) {
    if (entry.keep.back() >= plan.requests.size()) {
      return Status::FailedPrecondition("scenario " + entry.name +
                                        ": keep index out of range for the seed's schedule");
    }
    plan = RestrictPlan(plan, entry.keep);
  }
  if (plan.requests.size() != entry.requests) {
    return Status::FailedPrecondition("scenario " + entry.name +
                                      ": recorded request count does not match the derived plan");
  }
  return plan;
}

}  // namespace atropos
