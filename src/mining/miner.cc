#include "src/mining/miner.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "src/diagnose/diagnoser.h"
#include "src/testing/shrinker.h"

namespace atropos {

namespace {

void Progress(const MineOptions& options, const std::string& line) {
  if (options.progress) {
    options.progress(line);
  }
}

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

ScenarioPair RunScenarioPair(const FuzzPlan& plan) {
  ScenarioPair pair;
  FuzzPlan baseline_plan = plan;
  // Master switch only: the detector, estimator, and flight recorder keep
  // running, so the baseline trace still carries contention snapshots for
  // the offline diagnoser — the runtime just never pulls the trigger.
  baseline_plan.config.cancellation_enabled = false;
  pair.baseline = RunPlan(baseline_plan);
  pair.treatment = RunPlan(plan);
  return pair;
}

RecoveryVerdict EvaluateRecovery(const ScenarioPair& pair, const RecoveryThresholds& thresholds) {
  RecoveryVerdict v;
  v.baseline_overload_windows = pair.baseline.stats.resource_overload_windows;
  v.treatment_cancels = pair.treatment.stats.cancels_issued;
  TimeMicros base_p99 = pair.baseline.metrics.P99();
  TimeMicros treat_p99 = pair.treatment.metrics.P99();
  v.p99_ratio = treat_p99 > 0 ? static_cast<double>(base_p99) / static_cast<double>(treat_p99)
                              : 0.0;

  if (!pair.baseline.ok() || !pair.treatment.ok()) {
    v.reject_reason = "oracle violation";
    return v;
  }
  if (v.baseline_overload_windows < thresholds.min_overload_windows) {
    v.reject_reason = Format("baseline overload windows %llu < %llu",
                             (unsigned long long)v.baseline_overload_windows,
                             (unsigned long long)thresholds.min_overload_windows);
    return v;
  }
  if (v.treatment_cancels < thresholds.min_cancels) {
    v.reject_reason = Format("treatment cancels %llu < %llu",
                             (unsigned long long)v.treatment_cancels,
                             (unsigned long long)thresholds.min_cancels);
    return v;
  }
  if (v.p99_ratio < thresholds.min_p99_ratio) {
    v.reject_reason = Format("p99 ratio %.2f < %.2f", v.p99_ratio, thresholds.min_p99_ratio);
    return v;
  }
  v.qualifies = true;
  return v;
}

CorpusEntry EntryForPlan(const FuzzPlan& plan, const FuzzPlanOptions& plan_options) {
  ScenarioPair pair = RunScenarioPair(plan);
  RecoveryVerdict verdict = EvaluateRecovery(pair, RecoveryThresholds{});

  CorpusEntry entry;
  entry.mode = std::string(FuzzAppModeName(plan.mode));
  entry.seed = plan.seed;
  entry.name = entry.mode + "/s" + std::to_string(plan.seed);
  entry.load_scale = plan_options.load_scale;
  entry.drop_free = plan_options.drop_free_request_type;
  entry.extended_modes = plan_options.extended_modes;
  entry.force_mode = plan_options.force_mode;
  entry.keep = plan.kept;
  entry.quiet_faults = plan.faults.cancel_delay == 0 && plan.faults.extra_ticks.empty();
  entry.requests = plan.requests.size();
  entry.digest = pair.treatment.digest;
  entry.baseline_digest = pair.baseline.digest;
  entry.cancels = pair.treatment.stats.cancels_issued;
  entry.p99_ratio = verdict.p99_ratio;

  // Both verdicts come from the *baseline* trace: sustained overload means
  // rich evidence, and sharing the trace makes the comparison a pure
  // attribution cross-check (raw wait/hold integration vs the estimator's
  // recorded overload flags) rather than a comparison of two different runs.
  Diagnosis diagnosis = DiagnoseTrace(pair.baseline.events);
  entry.blamed_class = diagnosis.blamed_class;
  entry.estimator_class = EstimatorBlamedClass(pair.baseline.events);
  entry.agreement = entry.blamed_class == entry.estimator_class;
  if (!entry.agreement) {
    entry.note = Format("diagnoser blames %s (%.0f%% of integrated delay) but estimator flagged %s",
                        entry.blamed_class.empty() ? "-" : entry.blamed_class.c_str(),
                        diagnosis.blame_share * 100.0,
                        entry.estimator_class.empty() ? "-" : entry.estimator_class.c_str());
  }
  return entry;
}

MineReport MineScenarios(const MineOptions& options) {
  MineReport report;
  for (int i = 0; i < options.max_seeds; i++) {
    if (options.target > 0 && static_cast<int>(report.entries.size()) >= options.target) {
      break;
    }
    uint64_t seed = options.seed_start + static_cast<uint64_t>(i);
    report.seeds_scanned++;
    FuzzPlan plan = PlanFromSeed(seed, options.plan_options);
    ScenarioPair pair = RunScenarioPair(plan);
    RecoveryVerdict verdict = EvaluateRecovery(pair, options.thresholds);
    if (!verdict.qualifies) {
      continue;
    }
    report.candidates++;
    Progress(options,
             Format("seed %llu (%s): qualifies — %llu overload windows, %llu cancels, "
                    "p99 ratio %.2f",
                    (unsigned long long)seed,
                    std::string(FuzzAppModeName(plan.mode)).c_str(),
                    (unsigned long long)verdict.baseline_overload_windows,
                    (unsigned long long)verdict.treatment_cancels, verdict.p99_ratio));

    FuzzPlan final_plan = plan;
    if (options.shrink_budget > 0) {
      ShrinkOptions shrink_options;
      shrink_options.max_runs = options.shrink_budget;
      const RecoveryThresholds& thresholds = options.thresholds;
      ShrinkResult shrunk = ShrinkPlanIf(
          plan,
          [&thresholds](const FuzzPlan& candidate) {
            ScenarioPair probe = RunScenarioPair(candidate);
            return EvaluateRecovery(probe, thresholds).qualifies;
          },
          options.plan_options, shrink_options);
      report.shrink_runs += shrunk.runs;
      // ddmin preserves the predicate, but a budget of 0 probes or a
      // pathological final composition is cheap to guard against: keep the
      // shrunk plan only if it still qualifies on a fresh pair.
      ScenarioPair check = RunScenarioPair(shrunk.plan);
      if (EvaluateRecovery(check, thresholds).qualifies) {
        final_plan = shrunk.plan;
        Progress(options, Format("seed %llu: shrunk %zu -> %zu requests in %d probe(s)",
                                 (unsigned long long)seed, plan.requests.size(),
                                 final_plan.requests.size(), shrunk.runs));
      }
    }

    CorpusEntry entry = EntryForPlan(final_plan, options.plan_options);
    if (!entry.agreement) {
      report.disagreements++;
      Progress(options, Format("seed %llu: attribution disagreement (%s)",
                               (unsigned long long)seed, entry.note.c_str()));
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace atropos
