// Versioned on-disk corpus of mined overload scenarios.
//
// A corpus entry is a *recipe*, not a trace: seed + plan options + keep mask
// regenerate the exact FuzzPlan through the deterministic plan derivation, so
// entries stay tiny while replays are byte-exact. Alongside the recipe each
// entry records the expected outcome — treatment/baseline flight-recorder
// digests, cancel count, p99 recovery ratio, and the diagnoser-vs-estimator
// agreement verdict — which is what the corpus_replay test re-checks.
//
// The text format is line-oriented and canonical: a fixed header line
// ("atropos-corpus v1"), then blank-line-separated entries of
// `scenario <name>` ... `end` blocks with one `key value` pair per line, every
// field always present, fields in a fixed order, doubles in shortest
// round-trip form, digests as zero-padded lowercase hex. Canonical form makes
// parse → serialize → parse a byte-for-byte identity, which the golden-file
// tests pin. The parser accepts fields in any order (so hand-annotated notes
// survive), but rejects unknown keys, duplicate keys, duplicate scenario
// names, truncated headers, and unknown schema versions.
//
// On disk the corpus is sharded per application mode: corpus/<mode>.corpus.

#ifndef SRC_MINING_CORPUS_H_
#define SRC_MINING_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/testing/fuzz_plan.h"

namespace atropos {

inline constexpr std::string_view kCorpusHeader = "atropos-corpus v1";

struct CorpusEntry {
  std::string name;  // "<mode>/s<seed>", unique corpus-wide

  // ---- Plan recipe: regenerates the exact FuzzPlan.
  uint64_t seed = 0;
  std::string mode;  // FuzzAppModeName of the plan's mode (validated on replay)
  double load_scale = 1.0;
  int drop_free = -1;
  bool extended_modes = false;
  int force_mode = -1;
  std::vector<size_t> keep;  // shrunk schedule indices; empty = full schedule
  // The shrinker's phase 1 may strip fault-injection noise (cancel delays,
  // off-cadence ticks) from a survivor; that is part of the recipe, so the
  // entry records whether the replayed plan runs with quiet faults.
  bool quiet_faults = false;

  // ---- Expected replay outcome.
  uint64_t requests = 0;         // request count of the materialized plan
  uint64_t digest = 0;           // treatment (cancellation on) event digest
  uint64_t baseline_digest = 0;  // baseline (cancellation off) event digest
  uint64_t cancels = 0;          // treatment cancels issued
  double p99_ratio = 0.0;        // baseline p99 / treatment p99

  // ---- Diagnoser-vs-estimator oracle, both computed on the baseline trace.
  std::string blamed_class;     // offline diagnoser's bottleneck class
  std::string estimator_class;  // online estimator's dominant overloaded class
  bool agreement = true;
  std::string note;  // required (non-empty) when agreement is false
};

// Canonical single-entry serialization (scenario ... end, trailing newline).
std::string SerializeEntry(const CorpusEntry& entry);

// Canonical corpus document: header, then entries each preceded by one blank
// line, in the given order.
std::string SerializeCorpus(const std::vector<CorpusEntry>& entries);

// Parses one corpus document. Errors name the 1-based line.
StatusOr<std::vector<CorpusEntry>> ParseCorpus(std::string_view text);

// Reads and parses every *.corpus file under `dir` (sorted by filename, so
// load order is stable), rejecting duplicate scenario names across shards.
StatusOr<std::vector<CorpusEntry>> LoadCorpusDir(const std::string& dir);

// Writes entries sharded by mode to `dir`/<mode>.corpus in canonical form.
// Entries are sorted by name within each shard. Existing shard files are
// overwritten; unrelated files are left alone.
Status WriteCorpusShards(const std::string& dir, const std::vector<CorpusEntry>& entries);

// Rebuilds the entry's FuzzPlan (PlanFromSeed + RestrictPlan) and
// cross-checks the recorded mode and request count.
StatusOr<FuzzPlan> PlanForEntry(const CorpusEntry& entry);

// Keep-mask codec: ascending indices as comma-separated runs ("0-12,37"),
// "-" for the empty mask.
std::string FormatKeepRanges(const std::vector<size_t>& keep);
StatusOr<std::vector<size_t>> ParseKeepRanges(std::string_view text);

}  // namespace atropos

#endif  // SRC_MINING_CORPUS_H_
