// Scenario miner: searches fuzz-plan space for overload runs where targeted
// cancellation demonstrably rescues the SLO.
//
// For each candidate seed the miner runs the same plan twice — once with
// cancellation disabled (the *baseline*: detection and tracing stay on,
// actions off) and once as planned (the *treatment*) — and keeps the seed
// when the baseline sustains resource overload and misses the latency SLO
// while the treatment cancels at least one culprit and recovers the p99 by a
// configurable factor. Survivors are auto-shrunk with ddmin against the same
// two-run predicate under an explicit budget, diagnosed offline (which
// resource class was the bottleneck, per the raw baseline trace), and
// serialized as corpus entries carrying their expected replay digests and
// the diagnoser-vs-estimator agreement verdict.
//
// Everything is deterministic: seeds are scanned in order, the predicate is
// two deterministic simulations, and the shrinker budget is counted in
// predicate evaluations, not wall-clock.

#ifndef SRC_MINING_MINER_H_
#define SRC_MINING_MINER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/mining/corpus.h"
#include "src/testing/fuzzer.h"

namespace atropos {

// The same plan run both ways.
struct ScenarioPair {
  FuzzRunResult baseline;   // cancellation_enabled = false
  FuzzRunResult treatment;  // as planned
};

// Runs the plan twice (baseline first). The baseline flips only the
// cancellation master switch, so both runs share detector windows, tracing,
// and the schedule itself.
ScenarioPair RunScenarioPair(const FuzzPlan& plan);

// What counts as "baseline misses, treatment recovers".
struct RecoveryThresholds {
  // Baseline must sustain at least this many resource-overload windows.
  uint64_t min_overload_windows = 3;
  // Treatment must actually act.
  uint64_t min_cancels = 1;
  // Baseline p99 must exceed treatment p99 by this factor.
  double min_p99_ratio = 1.5;
};

struct RecoveryVerdict {
  bool qualifies = false;
  uint64_t baseline_overload_windows = 0;
  uint64_t treatment_cancels = 0;
  double p99_ratio = 0.0;  // baseline p99 / treatment p99
  std::string reject_reason;  // empty iff qualifies
};

// Pure predicate over a pair; both runs must also be oracle-clean (a mined
// scenario must exercise the controller, not a harness bug).
RecoveryVerdict EvaluateRecovery(const ScenarioPair& pair, const RecoveryThresholds& thresholds);

struct MineOptions {
  uint64_t seed_start = 1;
  // Seeds scanned, in order, starting at seed_start.
  int max_seeds = 1000;
  // Stop early once this many scenarios qualified (0 = scan all max_seeds).
  int target = 0;
  RecoveryThresholds thresholds;
  // Plan derivation knobs for the whole scan; extended_modes widens the mode
  // draw to the miner-only shapes.
  FuzzPlanOptions plan_options;
  // ddmin budget in predicate evaluations per survivor (each evaluation is
  // two simulations); 0 disables shrinking.
  int shrink_budget = 60;
  // Progress sink (may be null); receives one line per event of interest.
  std::function<void(const std::string&)> progress;
};

struct MineReport {
  std::vector<CorpusEntry> entries;
  int seeds_scanned = 0;
  int candidates = 0;      // seeds whose full plan qualified
  int shrink_runs = 0;     // total predicate evaluations spent shrinking
  int disagreements = 0;   // entries where diagnoser and estimator differ
};

// Scans seeds, shrinks survivors, diagnoses them, and returns finished
// corpus entries (named "<mode>/s<seed>"). Disagreeing entries are annotated
// with an auto-generated note, satisfying the corpus parse contract.
MineReport MineScenarios(const MineOptions& options);

// Builds the finished corpus entry for one qualifying (possibly shrunk)
// plan: re-runs the pair, diagnoses the baseline trace, and fills recipe +
// expected-outcome fields. Exposed for tests.
CorpusEntry EntryForPlan(const FuzzPlan& plan, const FuzzPlanOptions& plan_options);

}  // namespace atropos

#endif  // SRC_MINING_MINER_H_
