// Corpus replay oracle: re-executes every corpus entry and cross-checks it.
//
// For each entry the replayer rebuilds the plan from the recipe, runs the
// baseline/treatment pair, and verifies
//   (a) digest stability — both flight-recorder digests match the recorded
//       ones byte-for-byte (the corpus is a determinism regression net), and
//   (b) attribution agreement — the offline diagnoser's blamed resource
//       class and the estimator's recorded verdict, recomputed from the
//       fresh baseline trace, match the entry's fields, and the corpus-wide
//       agreement rate clears the required floor (disagreeing entries must
//       carry an annotation note; the parser already enforces that).
//
// This is what the corpus_replay ctest target runs, via atropos_mine.

#ifndef SRC_MINING_REPLAY_H_
#define SRC_MINING_REPLAY_H_

#include <string>
#include <vector>

#include "src/mining/corpus.h"

namespace atropos {

struct ReplayOptions {
  // Minimum fraction of entries whose recorded agreement field is true.
  double require_agreement = 0.95;
  // Replay at most this many entries (0 = all). Used by the sanitizer CI
  // stage, where each simulation is ~10x slower.
  int limit = 0;
  // Re-verify violations are absent on both runs (always on; kept for
  // symmetry/future use).
  bool check_oracles = true;
};

struct ReplayFailure {
  std::string name;
  std::string what;
};

struct ReplayReport {
  int replayed = 0;
  int agreements = 0;     // entries with agreement yes
  int disagreements = 0;  // entries with agreement no (annotated)
  double agreement_rate = 1.0;
  std::vector<ReplayFailure> failures;

  bool ok() const { return failures.empty(); }
};

// Replays entries (in order) against the oracles above. Failures accumulate
// rather than aborting, so one drifted entry reports all its mismatches and
// later entries still run.
ReplayReport ReplayCorpus(const std::vector<CorpusEntry>& entries, const ReplayOptions& options);

}  // namespace atropos

#endif  // SRC_MINING_REPLAY_H_
