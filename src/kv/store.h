// etcd-style key-value store with a keyspace lock (case c16).
//
// Point reads/writes take the keyspace mutex briefly; a complex range read
// walks a large fraction of the key space while holding it, blocking every
// other operation. Range reads are cancellable at per-batch checkpoints and
// report GetNext progress.

#ifndef SRC_KV_STORE_H_
#define SRC_KV_STORE_H_

#include "src/atropos/instrument.h"

namespace atropos {

struct KvStoreOptions {
  uint64_t num_keys = 100000;
  TimeMicros point_op_cost = 20;
  TimeMicros scan_cost_per_key = 4;
  uint64_t scan_batch = 200;  // keys scanned per cancellation checkpoint
};

class KvStore {
 public:
  KvStore(Executor& executor, const KvStoreOptions& options, OverloadController* tracer,
          ResourceId resource)
      : executor_(executor), options_(options), tracer_(tracer),
        keyspace_lock_(executor, tracer, resource) {}

  // Point get/put under the keyspace lock.
  Task<Status> PointOp(uint64_t key, CancelToken* token);

  // Range read over `span` keys, holding the keyspace lock throughout (the
  // etcd single-keyspace behaviour that makes large reads culprits).
  Task<Status> RangeRead(uint64_t key, uint64_t span, CancelToken* token);

  uint64_t num_keys() const { return options_.num_keys; }

 private:
  Executor& executor_;
  KvStoreOptions options_;
  OverloadController* tracer_;
  InstrumentedMutex keyspace_lock_;
};

}  // namespace atropos

#endif  // SRC_KV_STORE_H_
