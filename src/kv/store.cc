#include "src/kv/store.h"

#include <algorithm>

namespace atropos {

Task<Status> KvStore::PointOp(uint64_t key, CancelToken* token) {
  Status s = co_await keyspace_lock_.Acquire(key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, options_.point_op_cost};
  keyspace_lock_.Release(key);
  co_return Status::Ok();
}

Task<Status> KvStore::RangeRead(uint64_t key, uint64_t span, CancelToken* token) {
  span = std::min(span, options_.num_keys);
  Status s = co_await keyspace_lock_.Acquire(key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  uint64_t scanned = 0;
  while (scanned < span) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("range read cancelled at batch checkpoint");
      break;
    }
    uint64_t batch = std::min(options_.scan_batch, span - scanned);
    co_await Delay{executor_, options_.scan_cost_per_key * batch};
    scanned += batch;
    if (tracer_ != nullptr) {
      tracer_->OnProgress(key, scanned, span);
    }
  }
  keyspace_lock_.Release(key);
  co_return result;
}

}  // namespace atropos
