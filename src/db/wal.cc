#include "src/db/wal.h"

#include "src/sim/sleep.h"

namespace atropos {

WriteAheadLog::WriteAheadLog(Executor& executor, const WalOptions& options,
                             OverloadController* tracer, ResourceId resource)
    : executor_(executor),
      options_(options),
      tracer_(tracer),
      resource_(resource),
      log_mutex_(executor, tracer, resource),
      group_flushed_(std::make_shared<SimEvent>(executor)) {}

Task<Status> WriteAheadLog::Append(uint64_t key, uint64_t records, CancelToken* token) {
  // Append under the log mutex; cost scales with the record count, so a bulk
  // transaction occupies the mutex for a long stretch.
  Status s = co_await log_mutex_.Acquire(key, token);
  if (!s.ok()) {
    co_return s;
  }
  if (tracer_ != nullptr) {
    tracer_->OnGet(key, resource_, records);
  }
  pending_records_ += records;
  co_await Delay{executor_, options_.append_cost * records};
  log_mutex_.Release(key);
  co_return Status::Ok();
}

Task<Status> WriteAheadLog::WaitFlush(uint64_t key, uint64_t records, CancelToken* token) {
  std::shared_ptr<SimEvent> group = group_flushed_;
  if (tracer_ != nullptr) {
    tracer_->OnWaitBegin(key, resource_);
  }
  Status flush = co_await group->Wait(token);
  if (tracer_ != nullptr) {
    tracer_->OnWaitEnd(key, resource_);
    tracer_->OnFree(key, resource_, records);
  }
  co_return flush;
}

Task<Status> WriteAheadLog::AppendAndCommit(uint64_t key, uint64_t records, CancelToken* token) {
  Status s = co_await Append(key, records, token);
  if (!s.ok()) {
    co_return s;
  }
  co_return co_await WaitFlush(key, records, token);
}

void WriteAheadLog::StartFlusher(uint64_t key, CancelToken* stop) {
  FlusherLoop(key, stop);
}

Coro WriteAheadLog::FlusherLoop(uint64_t key, CancelToken* stop) {
  co_await BindExecutor{executor_};
  // Interval and flush sleeps are interruptible so Shutdown() quiesces the
  // loop synchronously; after a kCancelled sleep we must not re-read `stop`.
  while (!stop->cancelled()) {
    // Named local on purpose: g++ 12 miscompiles `(co_await ...).ok()` in a
    // condition inside this loop shape (resume pointer never stored).
    Status slept = co_await InterruptibleSleep(executor_, options_.flush_interval, stop);
    if (!slept.ok()) {
      break;
    }
    if (pending_records_ == 0) {
      continue;
    }
    // Take the log mutex for the duration of the flush: the bigger the
    // group, the longer every appender is locked out.
    Status s = co_await log_mutex_.Acquire(key, stop);
    if (!s.ok()) {
      break;
    }
    uint64_t batch = pending_records_;
    pending_records_ = 0;
    std::shared_ptr<SimEvent> group = group_flushed_;
    group_flushed_ = std::make_shared<SimEvent>(executor_);
    Status flushed =
        co_await InterruptibleSleep(executor_, options_.flush_base_cost + options_.flush_per_record * batch, stop);
    log_mutex_.Release(key);
    flushes_++;
    // Complete the group even on shutdown so appenders already parked on it
    // are not stranded.
    group->Set();
    if (!flushed.ok()) {
      break;
    }
  }
}

}  // namespace atropos
