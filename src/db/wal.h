// Write-ahead log with group commit (PostgreSQL case c7).
//
// Writers append records under the log mutex and then wait for the next
// group flush. The flush duration grows with the number of records in the
// group, so one bulk transaction appending thousands of records turns every
// group commit into a convoy that stalls all other writers — the "background
// WAL task causes group insertion and blocks other queries" overload.

#ifndef SRC_DB_WAL_H_
#define SRC_DB_WAL_H_

#include <memory>

#include "src/atropos/instrument.h"
#include "src/sim/coro.h"

namespace atropos {

struct WalOptions {
  TimeMicros append_cost = 5;          // copy one record under the log mutex
  TimeMicros flush_base_cost = 200;    // fsync latency floor
  TimeMicros flush_per_record = 20;    // additional time per flushed record
  TimeMicros flush_interval = 1000;    // group commit cadence
};

class WriteAheadLog {
 public:
  WriteAheadLog(Executor& executor, const WalOptions& options, OverloadController* tracer,
                ResourceId resource);

  // Appends `records` under the log mutex without waiting for a flush; bulk
  // writers call this in batches with cancellation checkpoints in between.
  Task<Status> Append(uint64_t key, uint64_t records, CancelToken* token);

  // Waits for the next group flush (commit durability point) and releases the
  // appender's record attribution.
  Task<Status> WaitFlush(uint64_t key, uint64_t records, CancelToken* token);

  // Convenience: Append + WaitFlush.
  Task<Status> AppendAndCommit(uint64_t key, uint64_t records, CancelToken* token);

  // Background flusher loop. `key` identifies the flusher task for tracing.
  // Runs until `stop` is cancelled.
  void StartFlusher(uint64_t key, CancelToken* stop);

  uint64_t pending_records() const { return pending_records_; }
  uint64_t flushes() const { return flushes_; }

 private:
  Coro FlusherLoop(uint64_t key, CancelToken* stop);

  Executor& executor_;
  WalOptions options_;
  OverloadController* tracer_;
  ResourceId resource_;

  InstrumentedMutex log_mutex_;
  uint64_t pending_records_ = 0;
  uint64_t flushes_ = 0;
  // One-shot event per group; swapped at each flush.
  std::shared_ptr<SimEvent> group_flushed_;
};

}  // namespace atropos

#endif  // SRC_DB_WAL_H_
