// MVCC version-chain model (PostgreSQL case c6).
//
// A bulk write creates many row versions ("version debt") on a table; until
// pruned, every reader pays a version-chain-walk penalty proportional to the
// debt. The pruner only makes progress while no writer is active on the
// table — so a long bulk write is the culprit that slows every reader down.

#ifndef SRC_DB_MVCC_H_
#define SRC_DB_MVCC_H_

#include "src/atropos/instrument.h"
#include "src/sim/coro.h"

namespace atropos {

struct MvccOptions {
  TimeMicros write_cost_per_row = 20;
  TimeMicros read_base_cost = 30;
  // Extra read cost per 1000 versions of debt.
  TimeMicros read_cost_per_1k_debt = 120;
  uint64_t prune_batch = 3000;
  TimeMicros prune_interval = 2000;
  // Rows written per cancellation checkpoint inside a bulk write.
  uint64_t write_batch = 50;
};

class MvccTable {
 public:
  MvccTable(Executor& executor, const MvccOptions& options, OverloadController* tracer,
            ResourceId resource)
      : executor_(executor), options_(options), tracer_(tracer), resource_(resource) {}

  // Writes `rows` row versions in cancellable batches. The writer holds one
  // unit of the MVCC resource for its whole duration (it blocks pruning).
  // Reports progress per batch (GetNext-style).
  Task<Status> BulkWrite(uint64_t key, uint64_t rows, CancelToken* token);

  // Reads one row, paying the version-walk penalty.
  Task<Status> Read(uint64_t key, CancelToken* token);

  void StartPruner(uint64_t key, CancelToken* stop);

  uint64_t version_debt() const { return debt_; }
  int active_writers() const { return active_writers_; }

 private:
  Coro PrunerLoop(uint64_t key, CancelToken* stop);

  Executor& executor_;
  MvccOptions options_;
  OverloadController* tracer_;
  ResourceId resource_;

  uint64_t debt_ = 0;
  int active_writers_ = 0;
};

}  // namespace atropos

#endif  // SRC_DB_MVCC_H_
