#include "src/db/buffer_pool.h"

#include "src/sim/coro.h"

namespace atropos {

Task<PageAccess> BufferPool::Access(uint64_t key, uint64_t page_id, bool write,
                                    CancelToken* token) {
  PageAccess out;
  if (token != nullptr && token->cancelled()) {
    out.status = Status::Cancelled("page access cancelled at checkpoint");
    co_return out;
  }

  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    // Hit: touch LRU, pay the in-memory cost.
    hits_++;
    out.hit = true;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(page_id);
    it->second.lru_pos = lru_.begin();
    if (write) {
      it->second.dirty = true;
    }
    co_await Delay{executor_, options_.hit_cost};
    out.status = Status::Ok();
    co_return out;
  }

  // Miss. The admission gate bounds concurrent evict-and-read sections; a
  // task cancelled while parked here is aborted in place — it never takes a
  // slot, so it cannot lengthen the miss convoy it was queued behind.
  misses_++;
  if (admission_ != nullptr) {
    Status admitted = co_await admission_->Acquire(1, token);
    if (!admitted.ok()) {
      admission_aborts_++;
      out.status = std::move(admitted);
      co_return out;
    }
  }

  // Make room first so the capacity invariant holds across the awaits.
  if (frames_.size() >= options_.capacity_pages && !lru_.empty()) {
    uint64_t victim_page = lru_.back();
    auto victim = frames_.find(victim_page);
    bool dirty = victim->second.dirty;
    uint64_t owner = victim->second.owner_key;
    lru_.pop_back();
    frames_.erase(victim);
    evictions_++;
    out.evicted = true;
    out.stall = dirty ? options_.dirty_evict_cost : options_.clean_evict_cost;
    // Attribute the freed page to the task that loaded it and the stall to
    // the task that had to evict (Fig 8: freeResource in buf_LRU_free,
    // slowByResource after the eviction scan). The bracket spans the read-back
    // too: under contention the page would otherwise have been resident, so
    // the whole evict-and-reload is contention-induced delay.
    if (tracer_ != nullptr) {
      tracer_->OnFree(owner, resource_, 1);
      tracer_->OnWaitBegin(key, resource_);
    }
    if (options_.device != nullptr && dirty) {
      co_await options_.device->Transfer(options_.page_bytes, token, nullptr);
    } else {
      co_await Delay{executor_, out.stall};
    }
  }

  if (options_.device != nullptr) {
    co_await options_.device->Transfer(options_.page_bytes, token, nullptr);
  } else {
    co_await Delay{executor_, options_.miss_cost};
  }
  if (out.evicted && tracer_ != nullptr) {
    tracer_->OnWaitEnd(key, resource_);
  }
  if (admission_ != nullptr) {
    // Release before the cancellation check: a cancelled-after-read task must
    // not strand its admission slot.
    admission_->Release(1);
  }
  if (token != nullptr && token->cancelled()) {
    out.status = Status::Cancelled("page access cancelled after disk read");
    co_return out;
  }

  // Another task may have loaded the page while this one was reading; the
  // late copy simply refreshes it.
  auto existing = frames_.find(page_id);
  if (existing != frames_.end()) {
    lru_.erase(existing->second.lru_pos);
    lru_.push_front(page_id);
    existing->second.lru_pos = lru_.begin();
    if (write) {
      existing->second.dirty = true;
    }
    out.status = Status::Ok();
    co_return out;
  }

  lru_.push_front(page_id);
  Frame frame;
  frame.owner_key = key;
  frame.dirty = write;
  frame.lru_pos = lru_.begin();
  frames_.emplace(page_id, frame);
  if (tracer_ != nullptr) {
    tracer_->OnGet(key, resource_, 1);
  }
  out.status = Status::Ok();
  co_return out;
}

uint64_t BufferPool::ResidentOwnedBy(uint64_t key) const {
  uint64_t n = 0;
  for (const auto& [page, frame] : frames_) {
    if (frame.owner_key == key) {
      n++;
    }
  }
  return n;
}

}  // namespace atropos
