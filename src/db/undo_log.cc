#include "src/db/undo_log.h"

#include <algorithm>

#include "src/sim/sleep.h"

namespace atropos {

UndoLog::UndoLog(Executor& executor, const UndoLogOptions& options, OverloadController* tracer,
                 ResourceId resource)
    : executor_(executor),
      options_(options),
      tracer_(tracer),
      resource_(resource),
      undo_mutex_(executor, tracer, resource) {}

Task<Status> UndoLog::Append(uint64_t key, CancelToken* token) {
  Status s = co_await undo_mutex_.Acquire(key, token);
  if (!s.ok()) {
    co_return s;
  }
  total_appended_++;
  co_await Delay{executor_, options_.append_base_cost};
  TimeMicros penalty = BacklogPenalty();
  if (penalty > 0) {
    // History-list pressure: the slow part of the append, reported as a stall
    // on the undo resource so the contention level reflects it.
    if (tracer_ != nullptr) {
      tracer_->OnWaitBegin(key, resource_);
    }
    co_await Delay{executor_, penalty};
    if (tracer_ != nullptr) {
      tracer_->OnWaitEnd(key, resource_);
    }
  }
  undo_mutex_.Release(key);
  co_return Status::Ok();
}

void UndoLog::PinSnapshot(uint64_t key) {
  pins_.emplace(key, total_appended_);
  if (tracer_ != nullptr) {
    // The pin holds the undo history open: modelled as holding one unit of
    // the undo resource for the pin's duration.
    tracer_->OnGet(key, resource_, 1);
  }
}

void UndoLog::UnpinSnapshot(uint64_t key) {
  if (pins_.erase(key) == 0) {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
}

void UndoLog::StartPurge(uint64_t key, CancelToken* stop) { PurgeLoop(key, stop); }

Coro UndoLog::PurgeLoop(uint64_t key, CancelToken* stop) {
  co_await BindExecutor{executor_};
  // The interval sleeps are interruptible so that Shutdown() quiesces the
  // loop synchronously; once a sleep reports kCancelled we exit without
  // re-reading `stop` (the owner may destroy it right after Cancel() returns).
  while (!stop->cancelled()) {
    // NOTE: the sleep status must be bound to a named local; g++ 12 miscompiles
    // `(co_await ...).ok()` used directly in a condition inside this loop shape
    // (the coroutine frame's resume pointer is never stored).
    Status slept = co_await InterruptibleSleep(executor_, options_.purge_interval, stop);
    if (!slept.ok()) {
      break;
    }
    // Purge may only truncate history up to the oldest pinned snapshot: a
    // long-running reader keeps everything appended after its pin alive.
    uint64_t limit = total_appended_;
    for (const auto& [pin_key, marker] : pins_) {
      limit = std::min(limit, marker);
    }
    if (purged_upto_ >= limit) {
      continue;
    }
    Status s = co_await undo_mutex_.Acquire(key, stop);
    if (!s.ok()) {
      break;
    }
    Status round = co_await InterruptibleSleep(executor_, options_.purge_round_cost, stop);
    if (!round.ok()) {
      undo_mutex_.Release(key);
      break;
    }
    purged_upto_ += std::min(limit - purged_upto_, options_.purge_batch);
    undo_mutex_.Release(key);
  }
}

}  // namespace atropos
