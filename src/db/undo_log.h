// Undo log with background purge (MySQL case c3).
//
// Writers append undo records whose cost grows with the backlog of
// unpurged history. The purge task truncates the backlog, but cannot advance
// past the oldest pinned snapshot — so one long-running read that pins an old
// snapshot makes the backlog (and with it every writer's append cost and the
// undo-mutex hold times) grow without bound. The culprit is the pinning read.

#ifndef SRC_DB_UNDO_LOG_H_
#define SRC_DB_UNDO_LOG_H_

#include <unordered_map>

#include "src/atropos/instrument.h"
#include "src/sim/coro.h"

namespace atropos {

struct UndoLogOptions {
  TimeMicros append_base_cost = 10;
  // Extra append cost per 1000 records of backlog (history list length).
  TimeMicros append_cost_per_1k_backlog = 150;
  uint64_t purge_batch = 2000;          // records truncated per purge round
  TimeMicros purge_interval = 2000;     // purge cadence
  TimeMicros purge_round_cost = 300;    // time purge holds the undo mutex
};

class UndoLog {
 public:
  UndoLog(Executor& executor, const UndoLogOptions& options, OverloadController* tracer,
          ResourceId resource);

  // Appends one undo record on behalf of a write; cost scales with backlog.
  Task<Status> Append(uint64_t key, CancelToken* token);

  // Pins / unpins a read snapshot. While any snapshot is pinned the purge
  // task cannot truncate history created after the pin.
  void PinSnapshot(uint64_t key);
  void UnpinSnapshot(uint64_t key);

  // Background purge loop; runs until `stop` is cancelled.
  void StartPurge(uint64_t key, CancelToken* stop);

  uint64_t backlog() const { return total_appended_ - purged_upto_; }
  bool pinned() const { return !pins_.empty(); }

 private:
  Coro PurgeLoop(uint64_t key, CancelToken* stop);
  TimeMicros BacklogPenalty() const {
    return options_.append_cost_per_1k_backlog * (backlog() / 1000);
  }

  Executor& executor_;
  UndoLogOptions options_;
  OverloadController* tracer_;
  ResourceId resource_;

  InstrumentedMutex undo_mutex_;
  // Monotone record counters: backlog = total_appended_ - purged_upto_.
  uint64_t total_appended_ = 0;
  uint64_t purged_upto_ = 0;
  // key -> record index at pin time. Purge cannot pass the oldest marker:
  // history created after a pinned snapshot must be kept for that reader.
  std::unordered_map<uint64_t, uint64_t> pins_;
};

}  // namespace atropos

#endif  // SRC_DB_UNDO_LOG_H_
