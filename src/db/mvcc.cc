#include "src/db/mvcc.h"

#include <algorithm>

#include "src/sim/sleep.h"

namespace atropos {

Task<Status> MvccTable::BulkWrite(uint64_t key, uint64_t rows, CancelToken* token) {
  active_writers_++;
  if (tracer_ != nullptr) {
    tracer_->OnGet(key, resource_, 1);
  }
  Status result = Status::Ok();
  uint64_t written = 0;
  while (written < rows) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("bulk write cancelled at batch checkpoint");
      break;
    }
    uint64_t batch = std::min(options_.write_batch, rows - written);
    co_await Delay{executor_, options_.write_cost_per_row * batch};
    debt_ += batch;
    written += batch;
    if (tracer_ != nullptr) {
      tracer_->OnProgress(key, written, rows);
    }
  }
  active_writers_--;
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, 1);
  }
  co_return result;
}

Task<Status> MvccTable::Read(uint64_t key, CancelToken* token) {
  if (token != nullptr && token->cancelled()) {
    co_return Status::Cancelled("read cancelled at checkpoint");
  }
  co_await Delay{executor_, options_.read_base_cost};
  TimeMicros penalty = options_.read_cost_per_1k_debt * (debt_ / 1000);
  if (penalty > 0) {
    if (tracer_ != nullptr) {
      tracer_->OnWaitBegin(key, resource_);
    }
    co_await Delay{executor_, penalty};
    if (tracer_ != nullptr) {
      tracer_->OnWaitEnd(key, resource_);
    }
  }
  co_return Status::Ok();
}

void MvccTable::StartPruner(uint64_t key, CancelToken* stop) { PrunerLoop(key, stop); }

Coro MvccTable::PrunerLoop(uint64_t key, CancelToken* stop) {
  co_await BindExecutor{executor_};
  // Interruptible so Shutdown() quiesces the loop synchronously; never
  // re-read `stop` after a kCancelled sleep.
  while (!stop->cancelled()) {
    // Named local on purpose: g++ 12 miscompiles `(co_await ...).ok()` in a
    // condition inside this loop shape (resume pointer never stored).
    Status slept = co_await InterruptibleSleep(executor_, options_.prune_interval, stop);
    if (!slept.ok()) {
      break;
    }
    if (active_writers_ > 0 || debt_ == 0) {
      continue;  // pruning cannot pass an active writer's snapshot
    }
    debt_ -= std::min(debt_, options_.prune_batch);
  }
}

}  // namespace atropos
