#include "src/db/lock_manager.h"

namespace atropos {

Task<Status> TableLockManager::AcquireAllExclusive(uint64_t key, CancelToken* token,
                                                   int* acquired_out) {
  int acquired = 0;
  for (int i = 0; i < num_tables(); i++) {
    Status s = co_await table(i).AcquireExclusive(key, token);
    if (!s.ok()) {
      *acquired_out = acquired;
      co_return s;
    }
    acquired++;
  }
  *acquired_out = acquired;
  co_return Status::Ok();
}

void TableLockManager::ReleaseAllExclusive(uint64_t key, int acquired) {
  for (int i = 0; i < acquired; i++) {
    table(i).ReleaseExclusive(key);
  }
}

}  // namespace atropos
