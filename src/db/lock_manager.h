// Table lock manager (paper §2.1 case 2 and cases c1/c4).
//
// Each table has a FIFO reader-writer lock; strict arrival-order granting
// reproduces the real MySQL convoy: a backup's queued exclusive request
// blocks every later shared request even while the current scan still runs.
// A backup operation acquires all tables in order, holding earlier tables
// while blocked on a later one — exactly the FTWRL hazard of case c1.

#ifndef SRC_DB_LOCK_MANAGER_H_
#define SRC_DB_LOCK_MANAGER_H_

#include <memory>
#include <vector>

#include "src/atropos/instrument.h"

namespace atropos {

class TableLockManager {
 public:
  TableLockManager(Executor& executor, int num_tables, OverloadController* tracer,
                   ResourceId resource, CancelMode cancel_mode = CancelMode::kSmart) {
    locks_.reserve(static_cast<size_t>(num_tables));
    for (int i = 0; i < num_tables; i++) {
      locks_.push_back(
          std::make_unique<InstrumentedRwLock>(executor, tracer, resource, cancel_mode));
    }
  }

  InstrumentedRwLock& table(int i) { return *locks_[static_cast<size_t>(i)]; }
  int num_tables() const { return static_cast<int>(locks_.size()); }

  // Acquires exclusive locks on tables [0, num_tables) in order, as the
  // backup (FTWRL) path does. On cancellation, already-held tables are
  // released and the status reports how far it got.
  Task<Status> AcquireAllExclusive(uint64_t key, CancelToken* token, int* acquired_out);
  void ReleaseAllExclusive(uint64_t key, int acquired);

 private:
  std::vector<std::unique_ptr<InstrumentedRwLock>> locks_;
};

}  // namespace atropos

#endif  // SRC_DB_LOCK_MANAGER_H_
