// LRU page buffer pool (the MySQL/InnoDB buffer pool analogue, paper §2.1
// case 1; reused as the Elasticsearch query cache in case c10).
//
// Pages are identified by 64-bit ids. A page access is a cache hit (cheap), a
// miss into a free frame (disk-read cost), or a miss that must first evict
// the LRU page — costlier still when the victim is dirty (flush-then-read).
// Every loaded frame remembers the task that brought it in so that eviction
// events can be attributed (freeResource against the page's owner, Fig 8).

#ifndef SRC_DB_BUFFER_POOL_H_
#define SRC_DB_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "src/atropos/controller.h"
#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/cpu.h"
#include "src/sim/executor.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace atropos {

struct BufferPoolOptions {
  uint64_t capacity_pages = 1024;
  TimeMicros hit_cost = 2;
  TimeMicros miss_cost = 80;           // read the page from disk
  TimeMicros clean_evict_cost = 10;    // drop a clean LRU page
  TimeMicros dirty_evict_cost = 250;   // flush a dirty LRU page first

  // When set, misses and dirty-page flushes go through this shared device
  // (page_bytes per transfer) instead of the fixed costs above — the real
  // thrashing mechanism: a dump's reads saturate the disk every other miss
  // also needs (§2.1 case 1).
  IoDevice* device = nullptr;
  uint64_t page_bytes = 64 * 1024;

  // When > 0, at most this many misses run their evict-and-read section
  // concurrently (InnoDB's single-page-flush throttle analogue). The
  // admission wait is a cancellable FIFO semaphore: Atropos can abort a
  // task parked at admission without it ever taking a slot.
  uint64_t admission_limit = 0;
  CancelMode cancel_mode = CancelMode::kSmart;
};

struct PageAccess {
  Status status;
  bool hit = false;
  bool evicted = false;        // this access had to evict a page
  TimeMicros stall = 0;        // eviction stall only (excludes the miss read)
};

class BufferPool {
 public:
  BufferPool(Executor& executor, const BufferPoolOptions& options, OverloadController* tracer,
             ResourceId resource)
      : executor_(executor), options_(options), tracer_(tracer), resource_(resource) {
    if (options_.admission_limit > 0) {
      admission_ = std::make_unique<SimSemaphore>(executor_, options_.admission_limit);
      admission_->set_cancel_mode(options_.cancel_mode);
    }
  }

  // Accesses `page_id` on behalf of task `key`. Write accesses mark the page
  // dirty. Cancellation is honoured at the access boundary.
  Task<PageAccess> Access(uint64_t key, uint64_t page_id, bool write, CancelToken* token);

  uint64_t resident_pages() const { return frames_.size(); }
  uint64_t capacity() const { return options_.capacity_pages; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  // Pages currently resident that were loaded by `key`.
  uint64_t ResidentOwnedBy(uint64_t key) const;
  // Misses cancelled while parked at the admission gate (never admitted).
  uint64_t admission_aborts() const { return admission_aborts_; }
  // Null unless options.admission_limit > 0.
  SimSemaphore* admission() { return admission_.get(); }

 private:
  struct Frame {
    uint64_t owner_key = 0;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_pos;
  };

  Executor& executor_;
  BufferPoolOptions options_;
  OverloadController* tracer_;
  ResourceId resource_;

  std::unordered_map<uint64_t, Frame> frames_;
  std::list<uint64_t> lru_;  // front = MRU, back = LRU victim
  std::unique_ptr<SimSemaphore> admission_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t admission_aborts_ = 0;
};

}  // namespace atropos

#endif  // SRC_DB_BUFFER_POOL_H_
