// Deterministic simulation fuzzer for the Atropos control loop.
//
// RunPlan materializes one FuzzPlan into a full simulation — executor +
// AtroposRuntime (flight recorder attached) + application + audit controller
// + frontend replaying the plan's request schedule — runs it to quiescence,
// and audits the result with every invariant oracle. Identical plans produce
// identical event digests; a non-empty violation list is a bug or a planted
// fault.

#ifndef SRC_TESTING_FUZZER_H_
#define SRC_TESTING_FUZZER_H_

#include <vector>

#include "src/testing/fuzz_plan.h"
#include "src/testing/oracles.h"
#include "src/workload/frontend.h"

namespace atropos {

struct FuzzRunResult {
  FuzzPlan plan;
  RunMetrics metrics;
  AtroposStats stats;
  std::vector<OracleViolation> violations;
  uint64_t digest = 0;  // FNV-1a over the full flight-recorder stream
  // The run's complete flight-recorder stream (the digest's preimage). The
  // scenario miner hands this to the offline bottleneck diagnoser.
  std::vector<FlightEvent> events;

  bool ok() const { return violations.empty(); }
};

// Runs one materialized plan through the full stack and audits it.
FuzzRunResult RunPlan(const FuzzPlan& plan);

// PlanFromSeed + RunPlan.
FuzzRunResult RunSeed(uint64_t seed, const FuzzPlanOptions& options = {});

}  // namespace atropos

#endif  // SRC_TESTING_FUZZER_H_
