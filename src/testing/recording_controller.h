// Test double that records the instrumentation stream apps emit.

#ifndef SRC_TESTING_RECORDING_CONTROLLER_H_
#define SRC_TESTING_RECORDING_CONTROLLER_H_

#include <string>
#include <vector>

#include "src/atropos/controller.h"

namespace atropos {

class RecordingController : public OverloadController {
 public:
  struct Event {
    std::string kind;  // get / free / wait_begin / wait_end / progress / ...
    uint64_t key = 0;
    ResourceId resource = kInvalidResourceId;
    uint64_t amount = 0;
  };

  std::string_view name() const override { return "recording"; }

  void OnTaskRegistered(uint64_t key, bool background, bool cancellable) override {
    events.push_back({"register", key, 0, background ? 1u : 0u});
  }
  void OnTaskFreed(uint64_t key) override { events.push_back({"free_task", key, 0, 0}); }
  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override {
    events.push_back({"get", key, resource, amount});
  }
  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override {
    events.push_back({"free", key, resource, amount});
  }
  void OnWaitBegin(uint64_t key, ResourceId resource) override {
    events.push_back({"wait_begin", key, resource, 0});
  }
  void OnWaitEnd(uint64_t key, ResourceId resource) override {
    events.push_back({"wait_end", key, resource, 0});
  }
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override {
    events.push_back({"progress", key, 0, done});
  }
  void OnRequestStart(uint64_t key, int request_type, int client_class) override {
    events.push_back({"request_start", key, 0, static_cast<uint64_t>(request_type)});
  }
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override {
    events.push_back({"request_end", key, 0, latency});
  }

  int Count(const std::string& kind) const {
    int n = 0;
    for (const Event& e : events) {
      if (e.kind == kind) {
        n++;
      }
    }
    return n;
  }

  int CountFor(const std::string& kind, uint64_t key) const {
    int n = 0;
    for (const Event& e : events) {
      if (e.kind == kind && e.key == key) {
        n++;
      }
    }
    return n;
  }

  uint64_t SumAmount(const std::string& kind, uint64_t key) const {
    uint64_t sum = 0;
    for (const Event& e : events) {
      if (e.kind == kind && e.key == key) {
        sum += e.amount;
      }
    }
    return sum;
  }

  std::vector<Event> events;
};

}  // namespace atropos

#endif  // SRC_TESTING_RECORDING_CONTROLLER_H_
