#include "src/testing/fuzzer.h"

#include <memory>

#include "src/apps/minidb.h"
#include "src/apps/minikv.h"
#include "src/testing/audit_controller.h"
#include "src/testing/digest.h"

namespace atropos {

namespace {

// Builds the application for a plan's mode, mirroring the corresponding
// overload-case recipe so the culprit request shapes are known to bite.
std::unique_ptr<App> MakeApp(Executor& executor, OverloadController* controller,
                             const FuzzPlan& plan) {
  switch (plan.mode) {
    case FuzzAppMode::kKvLock: {
      MiniKvOptions opt;
      opt.store.point_op_cost = 1000;
      opt.store.scan_cost_per_key = 20;
      return std::make_unique<MiniKv>(executor, controller, opt);
    }
    case FuzzAppMode::kDbTableLocks: {
      MiniDbOptions opt;
      opt.use_table_locks = true;
      opt.scan_rows = 20'000'000;
      opt.point_select_cost = 1000;
      opt.row_update_cost = 1000;
      opt.seed = plan.seed;
      return std::make_unique<MiniDb>(executor, controller, opt);
    }
    case FuzzAppMode::kDbTickets: {
      MiniDbOptions opt;
      opt.use_tickets = true;
      opt.innodb_tickets = 8;
      opt.point_select_cost = 1000;
      opt.slow_query_cost = 5'000'000;
      opt.seed = plan.seed;
      return std::make_unique<MiniDb>(executor, controller, opt);
    }
    case FuzzAppMode::kDbBufferPool: {
      MiniDbOptions opt;
      opt.use_buffer_pool = true;
      opt.pool.capacity_pages = 1500;
      opt.pages_per_table = 8192;
      opt.hot_pages_per_table = 256;
      opt.point_select_cost = 50;
      opt.row_update_cost = 60;
      opt.seed = plan.seed;
      return std::make_unique<MiniDb>(executor, controller, opt);
    }
    case FuzzAppMode::kDbIo: {
      MiniDbOptions opt;
      opt.use_io = true;
      opt.seed = plan.seed;
      return std::make_unique<MiniDb>(executor, controller, opt);
    }
    case FuzzAppMode::kKvCompactionStorm: {
      MiniKvOptions opt;
      opt.store.point_op_cost = 1000;
      opt.store.scan_cost_per_key = 20;
      return std::make_unique<MiniKv>(executor, controller, opt);
    }
    case FuzzAppMode::kDbTenantNoisy: {
      MiniDbOptions opt;
      opt.use_buffer_pool = true;
      opt.pool.capacity_pages = 1500;
      opt.pages_per_table = 8192;
      opt.hot_pages_per_table = 256;
      opt.point_select_cost = 50;
      opt.row_update_cost = 60;
      opt.seed = plan.seed;
      return std::make_unique<MiniDb>(executor, controller, opt);
    }
  }
  return nullptr;
}

}  // namespace

FuzzRunResult RunPlan(const FuzzPlan& plan) {
  Executor executor;
  // The runtime is hosted as the sole shard of a RuntimeGroup: the harness
  // drives the shard directly (byte-identical event stream and digest to a
  // bare runtime), while the group's process-wide ledger gets audited by the
  // group-ledger oracle on every run.
  RuntimeGroup group(executor.clock(), plan.config, /*shard_count=*/1);
  AtroposRuntime& runtime = group.shard(0);
  AuditController audit(runtime);
  audit.InjectDropFreeForType(plan.faults.drop_free_request_type);

  // The oracles audit the *complete* decision history, so the recorder is
  // sized to the run instead of the post-mortem default (overflow would
  // itself be flagged by the detector-monotonicity oracle).
  Observability obs(1 << 17);
  runtime.SetRecorder(&obs.recorder);
  runtime.SetCancelObserver(
      [&audit](uint64_t key, double score) { audit.OnCancelIssued(key, score); });

  std::unique_ptr<App> app = MakeApp(executor, &audit, plan);
  if (plan.faults.register_cancel_action) {
    // The app's safe initiator, optionally behind an injected delivery delay
    // (a slow sql_kill): the cancel may land after the victim completed,
    // retried, or was replaced — exactly the races the oracles check.
    App* app_ptr = app.get();
    TimeMicros delay = plan.faults.cancel_delay;
    runtime.SetCancelAction([&executor, app_ptr, delay](uint64_t key) {
      if (delay > 0) {
        executor.CallAfter(delay, [app_ptr, key] { app_ptr->Cancel(key); });
      } else {
        app_ptr->Cancel(key);
      }
    });
  }

  FrontendOptions fopt;
  fopt.duration = plan.duration;
  fopt.warmup = plan.warmup;
  fopt.tick_window = plan.tick_window;
  fopt.retry_cancelled = plan.retry_cancelled;
  fopt.max_retry_wait = plan.max_retry_wait;
  fopt.seed = plan.seed;
  Frontend frontend(executor, *app, audit, fopt);
  frontend.SetObservability(&obs);
  for (const FuzzRequest& req : plan.requests) {
    OneShotSpec shot;
    shot.type = req.type;
    shot.at = req.at;
    shot.arg = req.arg;
    shot.client_class = req.client_class;
    shot.background = req.background;
    shot.non_cancellable = req.non_cancellable;
    frontend.AddOneShot(shot);
  }
  // Executor hiccups: windows closing at irregular extra boundaries.
  for (TimeMicros at : plan.faults.extra_ticks) {
    executor.CallAt(at, [&audit] { audit.Tick(); });
  }

  FuzzRunResult result;
  result.plan = plan;
  result.metrics = frontend.Run();
  result.stats = runtime.stats();
  result.digest = DigestEvents(obs.recorder);
  result.events = obs.recorder.Snapshot();

  OracleContext ctx;
  ctx.runtime = &runtime;
  ctx.group = &group;
  ctx.audit = &audit;
  ctx.recorder = &obs.recorder;
  ctx.executor = &executor;
  ctx.policy = plan.config.policy;
  ctx.max_cancels_per_task = plan.config.max_cancels_per_task;
  ctx.initiator_registered = plan.faults.register_cancel_action;
  result.violations = RunAllOracles(ctx);
  return result;
}

FuzzRunResult RunSeed(uint64_t seed, const FuzzPlanOptions& options) {
  return RunPlan(PlanFromSeed(seed, options));
}

}  // namespace atropos
