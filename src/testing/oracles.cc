#include "src/testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

#include "src/atropos/policy.h"

namespace atropos {

namespace {

constexpr double kScoreEps = 1e-9;

void Add(std::vector<OracleViolation>* out, const char* oracle, std::string detail) {
  out->push_back(OracleViolation{oracle, std::move(detail)});
}

std::string Fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(buf);
}

// Strictly bracketed accounting disciplines: every lock/queue unit a task
// acquires must be returned by that task before it is freed. Memory resources
// (the buffer pool) are caches whose pages legitimately outlive their
// acquiring task and whose eviction frees are attributed to the (possibly
// departed) page owner; cpu/io report durations, not units. Those only have
// to satisfy the conservation identity, not the strict zero checks.
bool StrictClass(ResourceClass cls) {
  return cls == ResourceClass::kLock || cls == ResourceClass::kQueue;
}

// (1) Conservation identity: acquired + overfreed == released + leaked +
// live_held for every resource, however the application behaved.
void AccountingIdentity(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  for (const auto& row : ctx.runtime->AuditAccounting()) {
    if (!row.Balanced()) {
      Add(out, "accounting_identity",
          Fmt("%s: acquired=%llu overfreed=%llu != released=%llu leaked=%llu live=%llu",
              row.name.c_str(), (unsigned long long)row.acquired,
              (unsigned long long)row.overfreed, (unsigned long long)row.released,
              (unsigned long long)row.leaked, (unsigned long long)row.live_held));
    }
  }
}

// (2) Strict disciplines: lock/queue resources never leak, never overfree,
// and hold nothing once the simulation has drained.
void AccountingStrict(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  for (const auto& row : ctx.runtime->AuditAccounting()) {
    if (!StrictClass(row.cls)) {
      continue;
    }
    if (row.leaked != 0 || row.overfreed != 0 || row.live_held != 0) {
      Add(out, "accounting_strict",
          Fmt("%s (%s): leaked=%llu overfreed=%llu live=%llu after drain", row.name.c_str(),
              std::string(ResourceClassName(row.cls)).c_str(), (unsigned long long)row.leaked,
              (unsigned long long)row.overfreed, (unsigned long long)row.live_held));
    }
  }
}

// (3) The runtime's ledger must agree with the audit's independent count of
// the forwarded stream.
void LedgerMatch(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  auto rows = ctx.runtime->AuditAccounting();
  for (const auto& [id, info] : ctx.audit->resources()) {
    auto it = std::find_if(rows.begin(), rows.end(),
                           [&](const AtroposRuntime::ResourceAudit& r) { return r.id == id; });
    if (it == rows.end()) {
      Add(out, "ledger_match", Fmt("%s: registered but missing from runtime audit",
                                   info.name.c_str()));
      continue;
    }
    if (it->acquired != info.acquired || it->released != info.released) {
      Add(out, "ledger_match",
          Fmt("%s: runtime acquired=%llu released=%llu, audit saw %llu/%llu",
              info.name.c_str(), (unsigned long long)it->acquired,
              (unsigned long long)it->released, (unsigned long long)info.acquired,
              (unsigned long long)info.released));
    }
  }
}

// (4) Safe cancellation (§3.1, §3.6, §4): cancels only against live,
// cancellable registrations; at most max_cancels_per_task per epoch; none at
// all without a registered initiator; and the runtime's count matches the
// observer's.
void CancelSafety(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  const AtroposStats& stats = ctx.runtime->stats();
  if (!ctx.initiator_registered) {
    if (stats.cancels_issued != 0 || !ctx.audit->cancels().empty()) {
      Add(out, "cancel_safety",
          Fmt("no initiator registered but %llu cancels issued",
              (unsigned long long)stats.cancels_issued));
    }
    return;
  }
  if (stats.cancels_issued != ctx.audit->cancels().size()) {
    Add(out, "cancel_safety",
        Fmt("runtime counted %llu cancels, observer saw %zu",
            (unsigned long long)stats.cancels_issued, ctx.audit->cancels().size()));
  }
  for (const auto& rec : ctx.audit->cancels()) {
    if (!rec.live) {
      Add(out, "cancel_safety",
          Fmt("cancel issued for key=%llu with no live registration",
              (unsigned long long)rec.key));
      continue;
    }
    if (!rec.cancellable_at_issue) {
      Add(out, "cancel_safety",
          Fmt("cancel issued for non-cancellable key=%llu", (unsigned long long)rec.key));
    }
    if (rec.cancels_in_epoch > ctx.max_cancels_per_task) {
      Add(out, "cancel_safety",
          Fmt("key=%llu cancelled %d times in one registration (max %d)",
              (unsigned long long)rec.key, rec.cancels_in_epoch, ctx.max_cancels_per_task));
    }
  }
}

// (5) Pareto membership: every recorded winner is cancellable, survived the
// non-dominated filter, carries the maximum positive score — and no
// cancellable candidate dominates its gain vector (re-derived here from the
// recorded vectors, not taken from the policy's own flags).
void ParetoMembership(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  ctx.recorder->ForEach([&](const FlightEvent& ev) {
    if (ev.kind != ObsEventKind::kPolicyDecision || ev.label != "victim_selected") {
      return;
    }
    const ObsCandidateSample* winner = nullptr;
    for (const ObsCandidateSample& c : ev.candidates) {
      if (c.key == ev.key) {
        winner = &c;
        break;
      }
    }
    if (winner == nullptr) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: victim key=%llu not among recorded candidates",
              (unsigned long long)ev.seq, (unsigned long long)ev.key));
      return;
    }
    if (!winner->cancellable) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: victim key=%llu not cancellable", (unsigned long long)ev.seq,
              (unsigned long long)ev.key));
    }
    if (ev.value <= 0.0) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: victim selected with non-positive score %.9f",
              (unsigned long long)ev.seq, ev.value));
    }
    if (std::abs(ev.value - winner->score) > kScoreEps) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: decision score %.9f != winner's recorded score %.9f",
              (unsigned long long)ev.seq, ev.value, winner->score));
    }
    double best = 0.0;
    for (const ObsCandidateSample& c : ev.candidates) {
      if (c.pareto) {
        best = std::max(best, c.score);
      }
    }
    if (winner->score + kScoreEps < best) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: victim score %.9f below best scored candidate %.9f",
              (unsigned long long)ev.seq, winner->score, best));
    }
    if (ctx.policy == PolicyKind::kHeuristic) {
      // The greedy policy has no Pareto filter; the score checks above are
      // the whole property.
      return;
    }
    if (!winner->pareto) {
      Add(out, "pareto_membership",
          Fmt("seq=%llu: victim key=%llu outside the non-dominated set",
              (unsigned long long)ev.seq, (unsigned long long)ev.key));
    }
    for (const ObsCandidateSample& c : ev.candidates) {
      if (&c == winner || !c.cancellable) {
        continue;
      }
      if (c.gains.size() == winner->gains.size() && Dominates(c.gains, winner->gains)) {
        Add(out, "pareto_membership",
            Fmt("seq=%llu: candidate key=%llu dominates victim key=%llu",
                (unsigned long long)ev.seq, (unsigned long long)c.key,
                (unsigned long long)ev.key));
      }
    }
  });
}

// (6) Detector monotonicity: cancellations (and the policy runs that produce
// them) only happen inside a suspected-overload episode. A recorder that
// wrapped is itself a violation — the oracles' evidence would be truncated.
void DetectorMonotonicity(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  if (ctx.recorder->overwritten() > 0) {
    Add(out, "detector_monotonicity",
        Fmt("flight recorder wrapped: %llu events lost; size the recorder to the run",
            (unsigned long long)ctx.recorder->overwritten()));
    return;
  }
  bool in_overload = false;
  ctx.recorder->ForEach([&](const FlightEvent& ev) {
    switch (ev.kind) {
      case ObsEventKind::kOverloadEntered:
        in_overload = true;
        break;
      case ObsEventKind::kOverloadExited:
        in_overload = false;
        break;
      case ObsEventKind::kCancelIssued:
      case ObsEventKind::kPolicyDecision:
        if (!in_overload) {
          Add(out, "detector_monotonicity",
              Fmt("seq=%llu: %s outside a suspected-overload window",
                  (unsigned long long)ev.seq,
                  std::string(ObsEventKindName(ev.kind)).c_str()));
        }
        break;
      default:
        break;
    }
  });
}

// (7) Quiescence: once the frontend has drained the simulation, nothing is
// left — no pending events, no live coroutines, no registered tasks.
void Quiescence(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  if (ctx.executor->has_pending()) {
    Add(out, "quiescence",
        Fmt("executor still has %zu pending events", ctx.executor->pending_count()));
  }
  if (ctx.executor->live_procs() != 0) {
    Add(out, "quiescence",
        Fmt("%lld coroutine processes still live", (long long)ctx.executor->live_procs()));
  }
  if (ctx.runtime->live_task_count() != 0) {
    Add(out, "quiescence",
        Fmt("%zu tasks still registered with the runtime", ctx.runtime->live_task_count()));
  }
  if (ctx.audit->live_epoch_count() != 0) {
    Add(out, "quiescence",
        Fmt("%zu task epochs never freed", ctx.audit->live_epoch_count()));
  }
}

// (8) Event-stream sanity: seq strictly increasing, time monotone, and the
// client-side aftermath of a cancellation (completion, retry) only for keys
// the runtime actually cancelled.
void EventStreamSanity(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  bool first = true;
  uint64_t last_seq = 0;
  TimeMicros last_time = 0;
  std::unordered_set<uint64_t> cancelled;
  ctx.recorder->ForEach([&](const FlightEvent& ev) {
    if (!first && ev.seq <= last_seq) {
      Add(out, "event_stream_sanity",
          Fmt("seq regressed: %llu after %llu", (unsigned long long)ev.seq,
              (unsigned long long)last_seq));
    }
    if (!first && ev.time < last_time) {
      Add(out, "event_stream_sanity",
          Fmt("seq=%llu: time regressed %llu -> %llu", (unsigned long long)ev.seq,
              (unsigned long long)last_time, (unsigned long long)ev.time));
    }
    first = false;
    last_seq = ev.seq;
    last_time = ev.time;
    if (ev.kind == ObsEventKind::kCancelIssued) {
      cancelled.insert(ev.key);
    } else if (ev.kind == ObsEventKind::kCancelCompleted ||
               ev.kind == ObsEventKind::kTaskRetried) {
      if (cancelled.count(ev.key) == 0) {
        Add(out, "event_stream_sanity",
            Fmt("seq=%llu: %s for key=%llu with no prior cancel_issued",
                (unsigned long long)ev.seq, std::string(ObsEventKindName(ev.kind)).c_str(),
                (unsigned long long)ev.key));
      }
    }
  });
}

// (9) Bounded cancelled-key memo: the §4 memo must not leak. Its lifecycle
// counters obey a conservation identity (live == inserted - consumed -
// evicted), the live set never exceeds the cancellations that fed it, and
// the audit's independently aged shadow agrees with the runtime's count.
void CancelledKeyMemoBounded(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  const AtroposStats& stats = ctx.runtime->stats();
  const uint64_t live = ctx.runtime->cancelled_key_count();
  if (live + stats.cancelled_keys_consumed + stats.cancelled_keys_evicted !=
      stats.cancelled_keys_inserted) {
    Add(out, "cancelled_key_memo",
        Fmt("memo leak: live=%llu + consumed=%llu + evicted=%llu != inserted=%llu",
            (unsigned long long)live, (unsigned long long)stats.cancelled_keys_consumed,
            (unsigned long long)stats.cancelled_keys_evicted,
            (unsigned long long)stats.cancelled_keys_inserted));
  }
  if (stats.cancelled_keys_inserted > stats.cancels_issued) {
    Add(out, "cancelled_key_memo",
        Fmt("%llu memo insertions but only %llu cancels issued",
            (unsigned long long)stats.cancelled_keys_inserted,
            (unsigned long long)stats.cancels_issued));
  }
  if (live != ctx.audit->cancelled_key_memo_count()) {
    Add(out, "cancelled_key_memo",
        Fmt("runtime holds %llu memo entries, audit's aged shadow holds %zu",
            (unsigned long long)live, ctx.audit->cancelled_key_memo_count()));
  }
}

// (10) Group ledger: when the run is hosted in a RuntimeGroup, every shard's
// conservation ledger balances independently (tenant isolation holds at the
// accounting level — no unit acquired in one shard can be released or leak
// in another), and the per-shard sum equals the process-wide ledger, which
// in turn matches the audit's independent count of the stream.
void GroupLedger(const OracleContext& ctx, std::vector<OracleViolation>* out) {
  if (ctx.group == nullptr) {
    return;
  }
  for (size_t s = 0; s < ctx.group->shard_count(); s++) {
    for (const auto& row : ctx.group->shard(s).AuditAccounting()) {
      if (!row.Balanced()) {
        Add(out, "group_ledger",
            Fmt("shard %zu %s: acquired=%llu overfreed=%llu != released=%llu leaked=%llu "
                "live=%llu",
                s, row.name.c_str(), (unsigned long long)row.acquired,
                (unsigned long long)row.overfreed, (unsigned long long)row.released,
                (unsigned long long)row.leaked, (unsigned long long)row.live_held));
      }
    }
  }
  std::vector<ResourceAudit> total = ctx.group->AuditProcessWide();
  for (const ResourceAudit& row : total) {
    if (!row.Balanced()) {
      Add(out, "group_ledger",
          Fmt("process-wide %s: shard sum does not balance (acquired=%llu overfreed=%llu "
              "released=%llu leaked=%llu live=%llu)",
              row.name.c_str(), (unsigned long long)row.acquired,
              (unsigned long long)row.overfreed, (unsigned long long)row.released,
              (unsigned long long)row.leaked, (unsigned long long)row.live_held));
    }
  }
  for (const auto& [id, info] : ctx.audit->resources()) {
    auto it = std::find_if(total.begin(), total.end(),
                           [&](const ResourceAudit& r) { return r.id == id; });
    if (it == total.end()) {
      Add(out, "group_ledger",
          Fmt("%s: registered but missing from the process-wide ledger", info.name.c_str()));
      continue;
    }
    if (it->acquired != info.acquired || it->released != info.released) {
      Add(out, "group_ledger",
          Fmt("%s: process-wide acquired=%llu released=%llu, audit saw %llu/%llu",
              info.name.c_str(), (unsigned long long)it->acquired,
              (unsigned long long)it->released, (unsigned long long)info.acquired,
              (unsigned long long)info.released));
    }
  }
}

}  // namespace

std::vector<OracleViolation> RunAllOracles(const OracleContext& ctx) {
  std::vector<OracleViolation> out;
  AccountingIdentity(ctx, &out);
  AccountingStrict(ctx, &out);
  LedgerMatch(ctx, &out);
  CancelSafety(ctx, &out);
  ParetoMembership(ctx, &out);
  DetectorMonotonicity(ctx, &out);
  Quiescence(ctx, &out);
  EventStreamSanity(ctx, &out);
  CancelledKeyMemoBounded(ctx, &out);
  GroupLedger(ctx, &out);
  return out;
}

std::string FormatViolations(const std::vector<OracleViolation>& violations) {
  std::string out;
  for (const OracleViolation& v : violations) {
    out += "[" + v.oracle + "] " + v.detail + "\n";
  }
  return out;
}

}  // namespace atropos
