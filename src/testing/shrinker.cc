#include "src/testing/shrinker.h"

#include <algorithm>
#include <cstdio>

namespace atropos {

namespace {

// Wraps the caller's predicate with run counting and the optional budget.
// Once the budget is exhausted every further probe reports "not interesting",
// which makes ddmin terminate with the best reduction accepted so far.
class BudgetedPredicate {
 public:
  BudgetedPredicate(const PlanPredicate& pred, const ShrinkOptions& options, int* runs)
      : pred_(pred), max_runs_(options.max_runs), runs_(runs) {}

  bool operator()(const FuzzPlan& plan) {
    if (max_runs_ > 0 && *runs_ >= max_runs_) {
      return false;
    }
    (*runs_)++;
    return pred_(plan);
  }

 private:
  const PlanPredicate& pred_;
  int max_runs_;
  int* runs_;
};

}  // namespace

std::string ReproCommand(const FuzzPlan& plan, const FuzzPlanOptions& options) {
  char buf[64];
  std::string cmd = "fuzz_atropos --seed=";
  snprintf(buf, sizeof(buf), "%llu", (unsigned long long)plan.seed);
  cmd += buf;
  if (options.load_scale != 1.0) {
    snprintf(buf, sizeof(buf), " --load-scale=%g", options.load_scale);
    cmd += buf;
  }
  if (plan.faults.drop_free_request_type >= 0) {
    snprintf(buf, sizeof(buf), " --inject-drop-free=%d", plan.faults.drop_free_request_type);
    cmd += buf;
  }
  if (options.extended_modes) {
    cmd += " --extended-modes";
  }
  if (options.force_mode >= 0) {
    snprintf(buf, sizeof(buf), " --force-mode=%d", options.force_mode);
    cmd += buf;
  }
  if (!plan.kept.empty() || plan.requests.empty()) {
    cmd += " --keep=";
    for (size_t i = 0; i < plan.kept.size(); i++) {
      snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : ",", plan.kept[i]);
      cmd += buf;
    }
  }
  return cmd;
}

ShrinkResult ShrinkPlanIf(const FuzzPlan& plan, const PlanPredicate& interesting,
                          const FuzzPlanOptions& options, const ShrinkOptions& shrink_options) {
  ShrinkResult result;
  BudgetedPredicate still_interesting(interesting, shrink_options, &result.runs);
  FuzzPlan base = plan;

  // Phase 1: drop fault noise that isn't needed to reproduce.
  if (base.faults.cancel_delay != 0 || !base.faults.extra_ticks.empty()) {
    FuzzPlan quiet = base;
    quiet.faults.cancel_delay = 0;
    quiet.faults.extra_ticks.clear();
    if (still_interesting(quiet)) {
      base = quiet;
    }
  }

  // Phase 2: ddmin over the request schedule. `current` holds indices into
  // base.requests; RestrictPlan composes them with any pre-existing kept map
  // so the final indices always reference the seed's full schedule.
  std::vector<size_t> current(base.requests.size());
  for (size_t i = 0; i < current.size(); i++) {
    current[i] = i;
  }
  size_t chunks = 2;
  while (current.size() >= 2 && chunks <= current.size()) {
    bool reduced = false;
    size_t chunk_len = (current.size() + chunks - 1) / chunks;
    for (size_t start = 0; start < current.size(); start += chunk_len) {
      std::vector<size_t> complement;
      complement.reserve(current.size());
      for (size_t i = 0; i < current.size(); i++) {
        if (i < start || i >= start + chunk_len) {
          complement.push_back(current[i]);
        }
      }
      if (complement.empty()) {
        continue;
      }
      if (still_interesting(RestrictPlan(base, complement))) {
        current = std::move(complement);
        chunks = std::max<size_t>(chunks - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= current.size()) {
        break;
      }
      chunks = std::min(chunks * 2, current.size());
    }
  }

  result.plan = RestrictPlan(base, current);
  FuzzRunResult final_run = RunPlan(result.plan);
  result.runs++;
  result.violations = final_run.violations;
  result.kept = result.plan.kept;
  result.repro = ReproCommand(result.plan, options);
  return result;
}

ShrinkResult ShrinkPlan(const FuzzPlan& failing, const FuzzPlanOptions& options) {
  return ShrinkPlanIf(
      failing, [](const FuzzPlan& candidate) { return !RunPlan(candidate).violations.empty(); },
      options);
}

}  // namespace atropos
