#include "src/testing/shrinker.h"

#include <algorithm>
#include <cstdio>

namespace atropos {

namespace {

bool StillFails(const FuzzPlan& plan, int* runs) {
  (*runs)++;
  return !RunPlan(plan).violations.empty();
}

}  // namespace

std::string ReproCommand(const FuzzPlan& plan, const FuzzPlanOptions& options) {
  char buf[64];
  std::string cmd = "fuzz_atropos --seed=";
  snprintf(buf, sizeof(buf), "%llu", (unsigned long long)plan.seed);
  cmd += buf;
  if (options.load_scale != 1.0) {
    snprintf(buf, sizeof(buf), " --load-scale=%g", options.load_scale);
    cmd += buf;
  }
  if (plan.faults.drop_free_request_type >= 0) {
    snprintf(buf, sizeof(buf), " --inject-drop-free=%d", plan.faults.drop_free_request_type);
    cmd += buf;
  }
  if (!plan.kept.empty() || plan.requests.empty()) {
    cmd += " --keep=";
    for (size_t i = 0; i < plan.kept.size(); i++) {
      snprintf(buf, sizeof(buf), "%s%zu", i == 0 ? "" : ",", plan.kept[i]);
      cmd += buf;
    }
  }
  return cmd;
}

ShrinkResult ShrinkPlan(const FuzzPlan& failing, const FuzzPlanOptions& options) {
  ShrinkResult result;
  FuzzPlan base = failing;

  // Phase 1: drop fault noise that isn't needed to reproduce.
  if (base.faults.cancel_delay != 0 || !base.faults.extra_ticks.empty()) {
    FuzzPlan quiet = base;
    quiet.faults.cancel_delay = 0;
    quiet.faults.extra_ticks.clear();
    if (StillFails(quiet, &result.runs)) {
      base = quiet;
    }
  }

  // Phase 2: ddmin over the request schedule. `current` holds indices into
  // base.requests; RestrictPlan composes them with any pre-existing kept map
  // so the final indices always reference the seed's full schedule.
  std::vector<size_t> current(base.requests.size());
  for (size_t i = 0; i < current.size(); i++) {
    current[i] = i;
  }
  size_t chunks = 2;
  while (current.size() >= 2 && chunks <= current.size()) {
    bool reduced = false;
    size_t chunk_len = (current.size() + chunks - 1) / chunks;
    for (size_t start = 0; start < current.size(); start += chunk_len) {
      std::vector<size_t> complement;
      complement.reserve(current.size());
      for (size_t i = 0; i < current.size(); i++) {
        if (i < start || i >= start + chunk_len) {
          complement.push_back(current[i]);
        }
      }
      if (complement.empty()) {
        continue;
      }
      if (StillFails(RestrictPlan(base, complement), &result.runs)) {
        current = std::move(complement);
        chunks = std::max<size_t>(chunks - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= current.size()) {
        break;
      }
      chunks = std::min(chunks * 2, current.size());
    }
  }

  result.plan = RestrictPlan(base, current);
  FuzzRunResult final_run = RunPlan(result.plan);
  result.runs++;
  result.violations = final_run.violations;
  result.kept = result.plan.kept;
  result.repro = ReproCommand(result.plan, options);
  return result;
}

}  // namespace atropos
