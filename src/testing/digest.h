// Order-sensitive digest of a flight-recorder stream.
//
// Two runs of the same fuzz plan must produce bit-identical decision
// histories; hashing every field of every event into one FNV-1a value turns
// that property into a single comparable number for the determinism oracle
// and the fuzzer's replay check.

#ifndef SRC_TESTING_DIGEST_H_
#define SRC_TESTING_DIGEST_H_

#include <cstdint>
#include <string_view>

#include "src/obs/events.h"
#include "src/obs/flight_recorder.h"

namespace atropos {

class EventDigest {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= kPrime;
    }
  }
  void Mix(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  void Mix(std::string_view s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kPrime;
    }
  }

  void Mix(const FlightEvent& ev) {
    Mix(ev.seq);
    Mix(static_cast<uint64_t>(ev.time));
    Mix(static_cast<uint64_t>(ev.kind));
    Mix(ev.key);
    Mix(ev.value);
    Mix(ev.label);
    Mix(ev.completions);
    Mix(ev.overdue);
    for (const ObsResourceSample& r : ev.resources) {
      Mix(static_cast<uint64_t>(r.id));
      Mix(r.name);
      Mix(r.contention_norm);
      Mix(r.delay_us);
      Mix(static_cast<uint64_t>(r.overloaded));
    }
    for (const ObsCandidateSample& c : ev.candidates) {
      Mix(c.key);
      Mix(static_cast<uint64_t>(c.cancellable));
      Mix(static_cast<uint64_t>(c.pareto));
      Mix(c.score);
      for (double g : c.gains) {
        Mix(g);
      }
    }
  }

  uint64_t value() const { return hash_; }

 private:
  static constexpr uint64_t kPrime = 0x100000001b3ull;  // FNV-1a 64
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

inline uint64_t DigestEvents(const FlightRecorder& recorder) {
  EventDigest d;
  recorder.ForEach([&](const FlightEvent& ev) { d.Mix(ev); });
  return d.value();
}

}  // namespace atropos

#endif  // SRC_TESTING_DIGEST_H_
