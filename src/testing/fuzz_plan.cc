#include "src/testing/fuzz_plan.h"

#include <algorithm>

#include "src/apps/minidb.h"
#include "src/apps/minikv.h"
#include "src/common/rng.h"

namespace atropos {

std::string_view FuzzAppModeName(FuzzAppMode mode) {
  switch (mode) {
    case FuzzAppMode::kKvLock:
      return "kv_lock";
    case FuzzAppMode::kDbTableLocks:
      return "db_table_locks";
    case FuzzAppMode::kDbTickets:
      return "db_tickets";
    case FuzzAppMode::kDbBufferPool:
      return "db_buffer_pool";
    case FuzzAppMode::kDbIo:
      return "db_io";
    case FuzzAppMode::kKvCompactionStorm:
      return "kv_compaction_storm";
    case FuzzAppMode::kDbTenantNoisy:
      return "db_tenant_noisy";
  }
  return "unknown";
}

bool ParseFuzzAppMode(std::string_view name, FuzzAppMode* out) {
  for (int i = 0; i < kNumFuzzAppModesExtended; i++) {
    FuzzAppMode mode = static_cast<FuzzAppMode>(i);
    if (FuzzAppModeName(mode) == name) {
      *out = mode;
      return true;
    }
  }
  return false;
}

namespace {

// Appends a Poisson arrival stream of `type` requests over [start, end).
void AddStream(std::vector<FuzzRequest>* out, Rng rng, double qps, int type,
               int client_class, TimeMicros start, TimeMicros end, int arg_modulo,
               uint64_t fixed_arg) {
  if (qps <= 0.0) {
    return;
  }
  double mean_gap = static_cast<double>(kMicrosPerSecond) / qps;
  TimeMicros t = start;
  while (true) {
    t += static_cast<TimeMicros>(rng.NextExponential(mean_gap)) + 1;
    if (t >= end) {
      return;
    }
    FuzzRequest req;
    req.at = t;
    req.type = type;
    req.client_class = client_class;
    req.arg = arg_modulo > 0 ? rng.NextBounded(static_cast<uint64_t>(arg_modulo)) : fixed_arg;
    out->push_back(req);
  }
}

}  // namespace

FuzzPlan PlanFromSeed(uint64_t seed, const FuzzPlanOptions& options) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x6a09e667f3bcc909ull);
  FuzzPlan plan;
  plan.seed = seed;
  plan.mode = static_cast<FuzzAppMode>(rng.NextBounded(
      options.extended_modes ? kNumFuzzAppModesExtended : kNumFuzzAppModes));
  if (options.force_mode >= 0 && options.force_mode < kNumFuzzAppModesExtended) {
    plan.mode = static_cast<FuzzAppMode>(options.force_mode);
  }

  // ---- Runtime configuration points.
  AtroposConfig& cfg = plan.config;
  cfg.window = static_cast<TimeMicros>(rng.NextUniform(50'000, 150'000));
  cfg.slo_latency_increase = rng.NextUniform(0.10, 0.60);
  cfg.contention_threshold = rng.NextUniform(0.05, 0.25);
  cfg.min_cancel_interval = static_cast<TimeMicros>(rng.NextUniform(50'000, 400'000));
  cfg.policy = static_cast<PolicyKind>(rng.NextBounded(3));
  cfg.timestamp_mode =
      rng.NextBernoulli(0.5) ? TimestampMode::kSampled : TimestampMode::kPerEvent;
  cfg.reexec_calm_windows = static_cast<int>(rng.NextBounded(31)) + 10;

  // ---- Frontend shape.
  plan.duration = static_cast<TimeMicros>(rng.NextUniform(6.0, 10.0) * kMicrosPerSecond);
  plan.warmup = Seconds(2);
  plan.tick_window = cfg.window;
  plan.retry_cancelled = rng.NextBernoulli(0.8);
  plan.max_retry_wait = static_cast<TimeMicros>(rng.NextUniform(1.0, 3.0) * kMicrosPerSecond);

  // ---- Request schedule. Victims arrive from t=0 (the detector calibrates
  // on them); culprits only once calibration has had a chance to finish.
  double scale = options.load_scale * rng.NextUniform(0.7, 1.3);
  TimeMicros t0 = 0;
  TimeMicros tc = static_cast<TimeMicros>(rng.NextUniform(2.5, 3.5) * kMicrosPerSecond);
  TimeMicros end = plan.duration;
  std::vector<FuzzRequest>* reqs = &plan.requests;
  switch (plan.mode) {
    case FuzzAppMode::kKvLock: {
      AddStream(reqs, rng.Fork(), 400 * scale, kKvPointOp, 0, t0, end, 0, 0);
      uint64_t span = 50'000 + rng.NextBounded(250'000);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.3, 0.7), kKvRangeRead, 1, tc, end, 0, span);
      break;
    }
    case FuzzAppMode::kDbTableLocks: {
      AddStream(reqs, rng.Fork(), 450 * scale, kDbPointSelect, 0, t0, end, 5, 0);
      AddStream(reqs, rng.Fork(), 220 * scale, kDbInsert, 0, t0, end, 5, 0);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.2, 0.5), kDbTableScan, 1, tc, end, 5, 0);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.1, 0.3), kDbBackup, 1, tc, end, 0, 0);
      break;
    }
    case FuzzAppMode::kDbTickets: {
      AddStream(reqs, rng.Fork(), 1200 * scale, kDbPointSelect, 0, t0, end, 0, 0);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.8, 2.0), kDbSlowQuery, 1, tc, end, 0, 0);
      break;
    }
    case FuzzAppMode::kDbBufferPool: {
      AddStream(reqs, rng.Fork(), 1000 * scale, kDbPointSelect, 0, t0, end, 5, 0);
      AddStream(reqs, rng.Fork(), 350 * scale, kDbRowUpdate, 0, t0, end, 5, 0);
      uint64_t pages = 4000 + rng.NextBounded(8000);
      uint64_t table = rng.NextBounded(5);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.2, 0.4), kDbDumpQuery, 1, tc, end, 0,
                (pages << 8) | table);
      break;
    }
    case FuzzAppMode::kDbIo: {
      AddStream(reqs, rng.Fork(), 400 * scale, kDbIoQuery, 0, t0, end, 0, 0);
      uint64_t bytes = (128 + rng.NextBounded(384)) * 1024 * 1024;
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.15, 0.3), kDbVacuum, 1, tc, end, 0, bytes);
      break;
    }
    case FuzzAppMode::kKvCompactionStorm: {
      // Mixed storm on the keyspace lock: steady point ops, a *background*
      // compaction-style range sweep (no SLO, guaranteed re-execution under
      // §4), and bursts of foreground scans from the SLO-bearing class —
      // the convoy forms from both directions at once.
      AddStream(reqs, rng.Fork(), 380 * scale, kKvPointOp, 0, t0, end, 0, 0);
      uint64_t sweep_span = 250'000 + rng.NextBounded(450'000);
      {
        Rng compaction = rng.Fork();
        double mean_gap = rng.NextUniform(1.5, 3.0) * kMicrosPerSecond;
        TimeMicros t = tc;
        while (true) {
          t += static_cast<TimeMicros>(compaction.NextExponential(mean_gap)) + 1;
          if (t >= end) {
            break;
          }
          FuzzRequest req;
          req.at = t;
          req.type = kKvRangeRead;
          req.arg = sweep_span;
          req.client_class = 1;
          req.background = true;
          reqs->push_back(req);
        }
      }
      {
        Rng storm = rng.Fork();
        uint64_t storm_span = 15'000 + rng.NextBounded(50'000);
        TimeMicros t = tc + static_cast<TimeMicros>(rng.NextUniform(0.0, 0.8) * kMicrosPerSecond);
        while (t < end) {
          size_t burst = 2 + storm.NextBounded(5);
          for (size_t i = 0; i < burst; i++) {
            FuzzRequest req;
            req.at = t + static_cast<TimeMicros>(storm.NextUniform(0, 100'000));
            if (req.at >= end) {
              continue;
            }
            req.type = kKvRangeRead;
            req.arg = storm_span;
            req.client_class = 0;  // foreground scans carry the SLO
            reqs->push_back(req);
          }
          t += static_cast<TimeMicros>(storm.NextUniform(1.0, 2.2) * kMicrosPerSecond);
        }
      }
      break;
    }
    case FuzzAppMode::kDbTenantNoisy: {
      // Multi-tenant noisy neighbor: tenant 0 carries the SLO with a point
      // workload sized to the pool's hot set; tenant 1 floods the shared
      // buffer pool with repeated mid-size dumps. No single giant request —
      // the aggregate neighbor pressure is the culprit shape.
      AddStream(reqs, rng.Fork(), 900 * scale, kDbPointSelect, 0, t0, end, 5, 0);
      AddStream(reqs, rng.Fork(), 300 * scale, kDbRowUpdate, 0, t0, end, 5, 0);
      uint64_t pages = 2500 + rng.NextBounded(4500);
      uint64_t table = rng.NextBounded(5);
      AddStream(reqs, rng.Fork(), rng.NextUniform(0.4, 1.0), kDbDumpQuery, 1, tc, end, 0,
                (pages << 8) | table);
      AddStream(reqs, rng.Fork(), 60 * scale, kDbPointSelect, 1, tc, end, 5, 0);
      break;
    }
  }
  // Occasionally inject maintenance marked unsafe to kill: the policy must
  // route around it even when it is the heaviest resource user.
  if (rng.NextBernoulli(0.15) && !plan.requests.empty()) {
    FuzzRequest shot = plan.requests[rng.NextBounded(plan.requests.size())];
    shot.at = tc + static_cast<TimeMicros>(rng.NextUniform(0.0, 1.0) * kMicrosPerSecond);
    shot.client_class = 1;
    shot.non_cancellable = true;
    plan.requests.push_back(shot);
  }
  std::stable_sort(plan.requests.begin(), plan.requests.end(),
                   [](const FuzzRequest& a, const FuzzRequest& b) { return a.at < b.at; });

  // ---- Fault injections.
  if (rng.NextBernoulli(0.5)) {
    plan.faults.cancel_delay = static_cast<TimeMicros>(rng.NextUniform(1'000, 80'000));
  }
  size_t hiccups = rng.NextBounded(6);
  for (size_t i = 0; i < hiccups; i++) {
    plan.faults.extra_ticks.push_back(
        static_cast<TimeMicros>(rng.NextUniform(0.0, ToSeconds(plan.duration)) *
                                kMicrosPerSecond));
  }
  std::sort(plan.faults.extra_ticks.begin(), plan.faults.extra_ticks.end());
  plan.faults.register_cancel_action = !rng.NextBernoulli(0.05);
  plan.faults.drop_free_request_type = options.drop_free_request_type;
  return plan;
}

FuzzPlan RestrictPlan(const FuzzPlan& plan, const std::vector<size_t>& keep) {
  FuzzPlan out = plan;
  out.requests.clear();
  out.kept.clear();
  for (size_t idx : keep) {
    if (idx >= plan.requests.size()) {
      continue;
    }
    out.requests.push_back(plan.requests[idx]);
    out.kept.push_back(plan.kept.empty() ? idx : plan.kept[idx]);
  }
  return out;
}

}  // namespace atropos
