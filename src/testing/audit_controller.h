// Forwarding controller that shadows the instrumentation stream for the
// invariant oracles.
//
// The fuzz harness inserts one of these between the application/frontend and
// the AtroposRuntime under test. Every hook forwards unchanged, but the audit
// keeps its own independently derived view — task epochs with the §4
// cancellability override replayed, a per-resource get/free ledger, and a
// snapshot of runtime-visible state at every issued cancellation — which the
// oracles later compare against the runtime's books and the flight-recorder
// stream. It is also the harness's fault-injection point: it can drop the
// freeResource stream of one request type to plant a detectable accounting
// bug for shrinker exercises.

#ifndef SRC_TESTING_AUDIT_CONTROLLER_H_
#define SRC_TESTING_AUDIT_CONTROLLER_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/atropos/runtime.h"

namespace atropos {

class AuditController final : public OverloadController {
 public:
  explicit AuditController(AtroposRuntime& runtime) : runtime_(runtime) {}

  // One registration..free interval of a task key. Keys are reused across
  // retries, so a key maps to a sequence of epochs.
  struct Epoch {
    uint64_t key = 0;
    bool background = false;
    bool cancellable = true;  // after replaying the runtime's §4 override
    bool freed = false;
    bool replaced = false;  // torn down by a stale re-registration
    int cancels = 0;
  };

  // State visible to the runtime at the instant it issued a cancellation.
  struct CancelRecord {
    uint64_t key = 0;
    double score = 0.0;
    bool live = false;  // an unfreed epoch existed for the key
    bool cancellable_at_issue = false;
    int cancels_in_epoch = 0;  // including this one
  };

  struct ResourceInfo {
    ResourceId id = kInvalidResourceId;
    std::string name;
    ResourceClass cls = ResourceClass::kLock;
    // Shadow ledger: unit amounts forwarded for live keys, mirroring the
    // runtime's rule of ignoring events against unregistered keys.
    uint64_t acquired = 0;
    uint64_t released = 0;
  };

  std::string_view name() const override { return "audit"; }

  // Drops (does not forward, does not count) freeResource events of requests
  // of `type`. -1 disables. Simulates an application that forgets to release.
  void InjectDropFreeForType(int type) { drop_free_type_ = type; }

  // Wire as the runtime's cancel observer (fires synchronously at issue time).
  void OnCancelIssued(uint64_t key, double score) {
    CancelRecord rec;
    rec.key = key;
    rec.score = score;
    auto it = live_.find(key);
    if (it != live_.end()) {
      Epoch& epoch = epochs_[it->second];
      epoch.cancels++;
      rec.live = true;
      rec.cancellable_at_issue = epoch.cancellable;
      rec.cancels_in_epoch = epoch.cancels;
    }
    // Stamped with the same aging epoch the runtime uses, so the shadow memo
    // evicts in lockstep with the runtime's calm-window aging.
    ever_cancelled_.emplace(key, runtime_.calm_windows_total());
    cancels_.push_back(rec);
  }

  // ---- OverloadController: shadow, then forward ---------------------------
  ResourceId RegisterResource(std::string name, ResourceClass cls) override {
    ResourceId id = runtime_.RegisterResource(name, cls);
    ResourceInfo info;
    info.id = id;
    info.name = name;
    info.cls = cls;
    resources_[id] = std::move(info);
    return id;
  }

  void OnTaskRegistered(uint64_t key, bool background, bool cancellable) override {
    auto it = live_.find(key);
    if (it != live_.end()) {
      epochs_[it->second].freed = true;
      epochs_[it->second].replaced = true;
    }
    Epoch epoch;
    epoch.key = key;
    epoch.background = background;
    epoch.cancellable = cancellable && ever_cancelled_.count(key) == 0;
    ever_cancelled_.erase(key);
    live_[key] = epochs_.size();
    epochs_.push_back(epoch);
    runtime_.OnTaskRegistered(key, background, cancellable);
  }

  void OnTaskFreed(uint64_t key) override {
    auto it = live_.find(key);
    if (it != live_.end()) {
      epochs_[it->second].freed = true;
      live_.erase(it);
    }
    runtime_.OnTaskFreed(key);
  }

  void OnGet(uint64_t key, ResourceId resource, uint64_t amount) override {
    auto res = resources_.find(resource);
    if (res != resources_.end() && live_.count(key) != 0) {
      res->second.acquired += amount;
    }
    runtime_.OnGet(key, resource, amount);
  }

  void OnFree(uint64_t key, ResourceId resource, uint64_t amount) override {
    if (drop_free_type_ >= 0) {
      auto type = key_types_.find(key);
      if (type != key_types_.end() && type->second == drop_free_type_) {
        dropped_frees_++;
        return;
      }
    }
    auto res = resources_.find(resource);
    if (res != resources_.end() && live_.count(key) != 0) {
      res->second.released += amount;
    }
    runtime_.OnFree(key, resource, amount);
  }

  void OnWaitBegin(uint64_t key, ResourceId resource) override {
    runtime_.OnWaitBegin(key, resource);
  }
  void OnWaitEnd(uint64_t key, ResourceId resource) override {
    runtime_.OnWaitEnd(key, resource);
  }
  void OnUsage(uint64_t key, ResourceId resource, TimeMicros waited,
               TimeMicros used) override {
    runtime_.OnUsage(key, resource, waited, used);
  }

  void OnRequestStart(uint64_t key, int request_type, int client_class) override {
    key_types_[key] = request_type;
    runtime_.OnRequestStart(key, request_type, client_class);
  }
  void OnRequestEnd(uint64_t key, TimeMicros latency, int request_type,
                    int client_class) override {
    runtime_.OnRequestEnd(key, latency, request_type, client_class);
  }
  void OnProgress(uint64_t key, uint64_t done, uint64_t total) override {
    runtime_.OnProgress(key, done, total);
  }
  bool AdmitRequest(uint64_t key, int request_type, int client_class) override {
    return runtime_.AdmitRequest(key, request_type, client_class);
  }
  void Tick() override {
    runtime_.Tick();
    // Replay the runtime's §4 memo aging from the same evidence (monotone
    // calm-window count, stamp at issue): entries that survived the
    // re-execution horizon of calm windows are dropped. Must match
    // AtroposRuntime::Tick() or the cancellability replay diverges.
    const uint64_t calm = runtime_.calm_windows_total();
    const uint64_t horizon =
        static_cast<uint64_t>(std::max(runtime_.config().reexec_calm_windows, 1));
    for (auto it = ever_cancelled_.begin(); it != ever_cancelled_.end();) {
      if (calm - it->second >= horizon) {
        it = ever_cancelled_.erase(it);
      } else {
        ++it;
      }
    }
  }
  bool ReexecutionRecommended() const override { return runtime_.ReexecutionRecommended(); }

  // ---- Oracle access ------------------------------------------------------
  const std::vector<Epoch>& epochs() const { return epochs_; }
  const std::vector<CancelRecord>& cancels() const { return cancels_; }
  const std::unordered_map<ResourceId, ResourceInfo>& resources() const { return resources_; }
  size_t live_epoch_count() const { return live_.size(); }
  // Shadow of the runtime's cancelled-key memo; the bounded-memo oracle
  // checks it agrees with the runtime's count.
  size_t cancelled_key_memo_count() const { return ever_cancelled_.size(); }
  uint64_t dropped_frees() const { return dropped_frees_; }
  int TypeOfKey(uint64_t key) const {
    auto it = key_types_.find(key);
    return it == key_types_.end() ? -1 : it->second;
  }

 private:
  AtroposRuntime& runtime_;
  std::vector<Epoch> epochs_;
  std::unordered_map<uint64_t, size_t> live_;  // key -> index of unfreed epoch
  // Mirrors runtime cancelled_keys_: key -> calm_windows_total() at issue.
  std::unordered_map<uint64_t, uint64_t> ever_cancelled_;
  std::unordered_map<uint64_t, int> key_types_;
  std::unordered_map<ResourceId, ResourceInfo> resources_;
  std::vector<CancelRecord> cancels_;
  int drop_free_type_ = -1;
  uint64_t dropped_frees_ = 0;
};

}  // namespace atropos

#endif  // SRC_TESTING_AUDIT_CONTROLLER_H_
