// Invariant oracles audited after every fuzz run (DESIGN.md §10).
//
// Each oracle re-derives one property of the Atropos control loop from
// independent evidence — the audit controller's shadow of the instrumentation
// stream, the runtime's conservation ledger, and the recorded decision
// history — instead of trusting the runtime's own view. A clean run yields an
// empty violation list; any entry is a bug (or a planted fault) for the
// shrinker to minimize.

#ifndef SRC_TESTING_ORACLES_H_
#define SRC_TESTING_ORACLES_H_

#include <string>
#include <vector>

#include "src/atropos/runtime.h"
#include "src/atropos/runtime_group.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/executor.h"
#include "src/testing/audit_controller.h"

namespace atropos {

struct OracleViolation {
  std::string oracle;  // which invariant ("accounting_strict", "cancel_safety", ...)
  std::string detail;  // human-readable evidence
};

struct OracleContext {
  const AtroposRuntime* runtime = nullptr;
  // The group hosting `runtime` as one of its shards, when the harness runs
  // through a RuntimeGroup; enables the group-ledger oracle (each shard's
  // conservation ledger balances independently and the shard sum equals the
  // process-wide ledger). Null skips that oracle.
  const RuntimeGroup* group = nullptr;
  const AuditController* audit = nullptr;
  const FlightRecorder* recorder = nullptr;
  const Executor* executor = nullptr;
  PolicyKind policy = PolicyKind::kMultiObjective;
  int max_cancels_per_task = 1;
  // Whether the harness registered a cancel initiator with the runtime; when
  // false, the §3.1 property is that zero cancellations were issued.
  bool initiator_registered = true;
};

// Runs the full oracle suite; empty result = all invariants hold.
std::vector<OracleViolation> RunAllOracles(const OracleContext& ctx);

// One line per violation, for logs and repro output.
std::string FormatViolations(const std::vector<OracleViolation>& violations);

}  // namespace atropos

#endif  // SRC_TESTING_ORACLES_H_
