// Seed-derived fuzz plans: a fully materialized description of one
// simulation run — application mode, randomized runtime/frontend
// configuration, a concrete request schedule, and fault injections.
//
// Plans are pure data derived deterministically from a seed, which is what
// makes the whole harness reproducible: the same seed always yields the same
// plan, the same simulation, and the same flight-recorder stream, and the
// shrinker can bisect the request schedule while holding everything else
// fixed (`keep` masks reference indices into the seed's schedule).

#ifndef SRC_TESTING_FUZZ_PLAN_H_
#define SRC_TESTING_FUZZ_PLAN_H_

#include <string>
#include <vector>

#include "src/atropos/config.h"
#include "src/common/clock.h"

namespace atropos {

// Which application + resource-class mix a plan exercises. Each mode mirrors
// one of the reproduced overload cases so culprit shapes are known to bite.
// Modes above kNumFuzzAppModes are the *extended* shapes the scenario miner
// searches in addition to the base set; they are only reachable through
// FuzzPlanOptions (extended_modes / force_mode) so default seeds keep
// producing exactly the plans they always did.
enum class FuzzAppMode {
  kKvLock = 0,             // MiniKv keyspace lock (c16, lock)
  kDbTableLocks = 1,       // MiniDb table locks / backup convoy (c1, lock)
  kDbTickets = 2,          // MiniDb InnoDB ticket queue (c2, queue)
  kDbBufferPool = 3,       // MiniDb buffer pool thrash (c5, memory)
  kDbIo = 4,               // MiniDb vacuum I/O (c8, io)
  kKvCompactionStorm = 5,  // background compaction + foreground scan storm (lock)
  kDbTenantNoisy = 6,      // multi-tenant noisy neighbor on the buffer pool (memory)
};
inline constexpr int kNumFuzzAppModes = 5;          // base, seed-stable set
inline constexpr int kNumFuzzAppModesExtended = 7;  // miner search space

std::string_view FuzzAppModeName(FuzzAppMode mode);

// Inverse of FuzzAppModeName over the extended mode set. Returns false (and
// leaves `out` untouched) for unknown names.
bool ParseFuzzAppMode(std::string_view name, FuzzAppMode* out);

// One concrete arrival. `at` is absolute virtual time; requests are injected
// as frontend one-shots so a shrunk schedule replays byte-for-byte.
struct FuzzRequest {
  TimeMicros at = 0;
  int type = 0;
  uint64_t arg = 0;
  int client_class = 0;          // 0 = SLO-bearing victim, 1 = culprit
  bool background = false;
  bool non_cancellable = false;  // injected maintenance marked unsafe to kill
};

// Fault injections layered over the schedule.
struct FuzzFaults {
  // Delay between the runtime issuing a cancellation and the application's
  // initiator observing it (slow sql_kill delivery).
  TimeMicros cancel_delay = 0;
  // Off-cadence controller ticks (executor hiccups: windows closing at
  // irregular boundaries).
  std::vector<TimeMicros> extra_ticks;
  // When false, the harness never registers a cancel initiator with the
  // runtime — the §3.1 safety property the no-initiator oracle watches.
  bool register_cancel_action = true;
  // Synthetic application bug for shrinker exercises: drop the freeResource
  // stream of requests of this type (-1 = disabled). Surfaces as an
  // accounting-conservation violation attributable to single requests.
  int drop_free_request_type = -1;
};

struct FuzzPlan {
  uint64_t seed = 0;
  FuzzAppMode mode = FuzzAppMode::kKvLock;
  AtroposConfig config;           // randomized detector/policy/pacing knobs
  TimeMicros duration = 0;        // arrivals stop here
  TimeMicros warmup = 0;
  TimeMicros tick_window = 0;
  bool retry_cancelled = true;
  TimeMicros max_retry_wait = 0;
  std::vector<FuzzRequest> requests;
  // Original schedule indices of `requests`, maintained by RestrictPlan so a
  // shrunk plan can be replayed as `--seed=S --keep=i,j,...`. Empty = identity
  // (the seed's full schedule).
  std::vector<size_t> kept;
  FuzzFaults faults;
};

struct FuzzPlanOptions {
  // Scales victim arrival rates (and thus run cost).
  double load_scale = 1.0;
  // Forwarded into FuzzFaults of every generated plan.
  int drop_free_request_type = -1;
  // When true, the seed's mode draw covers the extended shapes as well
  // (kNumFuzzAppModesExtended instead of kNumFuzzAppModes). Off by default so
  // plain seeds remain byte-compatible with the historical plan space.
  bool extended_modes = false;
  // Forces a specific FuzzAppMode regardless of the seed's draw (-1 =
  // disabled). The draw is still consumed so the rest of the plan derivation
  // stays aligned with the unforced plan of the same seed.
  int force_mode = -1;
};

// Derives the full plan for `seed`. Deterministic: equal seeds and options
// yield structurally identical plans.
FuzzPlan PlanFromSeed(uint64_t seed, const FuzzPlanOptions& options = {});

// Restricts a plan to the requests whose schedule indices are in `keep`
// (order-preserving). Used by the shrinker and by `--keep` repro runs.
FuzzPlan RestrictPlan(const FuzzPlan& plan, const std::vector<size_t>& keep);

}  // namespace atropos

#endif  // SRC_TESTING_FUZZ_PLAN_H_
