// Failing-seed minimizer: delta-debugging over a plan's request schedule.
//
// Given a plan whose run is "interesting" — by default, violates an invariant
// oracle — the shrinker first tries to strip the fault-injection noise
// (cancel delays, extra ticks), then runs ddmin over the request schedule,
// re-executing candidate subsets until no chunk can be removed without losing
// the property. The result carries the surviving original schedule indices
// and a ready-to-paste fuzz_atropos command line that replays the minimal
// repro.
//
// The interestingness test is pluggable (ShrinkPlanIf): the scenario miner
// shrinks against its SLO-miss/recovery predicate — two simulations per probe
// — instead of the oracle-violation predicate, under an explicit run budget.

#ifndef SRC_TESTING_SHRINKER_H_
#define SRC_TESTING_SHRINKER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/testing/fuzzer.h"

namespace atropos {

// Returns true when the candidate plan still exhibits the property being
// minimized. Must be deterministic: ddmin assumes a probe's answer does not
// change across re-evaluations of the same subset.
using PlanPredicate = std::function<bool(const FuzzPlan&)>;

struct ShrinkOptions {
  // Upper bound on predicate evaluations (0 = unbounded). When the budget
  // runs out mid-ddmin the best reduction found so far is returned — still a
  // valid (predicate-holding) plan, just not necessarily 1-minimal.
  int max_runs = 0;
};

struct ShrinkResult {
  FuzzPlan plan;                            // minimal still-interesting plan
  std::vector<size_t> kept;                 // original schedule indices kept
  std::vector<OracleViolation> violations;  // of the minimal plan
  int runs = 0;                             // predicate evaluations spent
  std::string repro;                        // fuzz_atropos replay command
};

// Minimizes `failing` (whose full run must violate an oracle). `options` are
// the plan options the seed was generated with, echoed into the repro line.
ShrinkResult ShrinkPlan(const FuzzPlan& failing, const FuzzPlanOptions& options = {});

// Generalized minimizer: `interesting` must hold for `plan` itself and is
// preserved by every accepted reduction.
ShrinkResult ShrinkPlanIf(const FuzzPlan& plan, const PlanPredicate& interesting,
                          const FuzzPlanOptions& options = {},
                          const ShrinkOptions& shrink_options = {});

// The repro command for a (possibly restricted) plan.
std::string ReproCommand(const FuzzPlan& plan, const FuzzPlanOptions& options);

}  // namespace atropos

#endif  // SRC_TESTING_SHRINKER_H_
