// Failing-seed minimizer: delta-debugging over a plan's request schedule.
//
// Given a plan whose run violates an oracle, the shrinker first tries to
// strip the fault-injection noise (cancel delays, extra ticks), then runs
// ddmin over the request schedule, re-executing candidate subsets until no
// chunk can be removed without losing the violation. The result carries the
// surviving original schedule indices and a ready-to-paste fuzz_atropos
// command line that replays the minimal repro.

#ifndef SRC_TESTING_SHRINKER_H_
#define SRC_TESTING_SHRINKER_H_

#include <string>
#include <vector>

#include "src/testing/fuzzer.h"

namespace atropos {

struct ShrinkResult {
  FuzzPlan plan;                            // minimal still-failing plan
  std::vector<size_t> kept;                 // original schedule indices kept
  std::vector<OracleViolation> violations;  // of the minimal plan
  int runs = 0;                             // simulations spent shrinking
  std::string repro;                        // fuzz_atropos replay command
};

// Minimizes `failing` (whose full run must violate an oracle). `options` are
// the plan options the seed was generated with, echoed into the repro line.
ShrinkResult ShrinkPlan(const FuzzPlan& failing, const FuzzPlanOptions& options = {});

// The repro command for a (possibly restricted) plan.
std::string ReproCommand(const FuzzPlan& plan, const FuzzPlanOptions& options);

}  // namespace atropos

#endif  // SRC_TESTING_SHRINKER_H_
