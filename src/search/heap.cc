#include "src/search/heap.h"

namespace atropos {

Task<Status> GcHeap::Allocate(uint64_t key, uint64_t kb, CancelToken* token) {
  if (token != nullptr && token->cancelled()) {
    co_return Status::Cancelled("allocation cancelled at checkpoint");
  }
  // Stop-the-world: allocations stall while a GC is running.
  while (gc_running_) {
    std::shared_ptr<SimEvent> done = gc_done_;
    if (tracer_ != nullptr) {
      tracer_->OnWaitBegin(key, resource_);
    }
    Status s = co_await done->Wait(token);
    if (tracer_ != nullptr) {
      tracer_->OnWaitEnd(key, resource_);
    }
    if (!s.ok()) {
      co_return s;
    }
  }

  co_await Delay{executor_, options_.alloc_cost_per_mb * (kb / 1024 + 1)};
  usage_kb_ += kb;
  live_kb_ += kb;
  live_by_key_[key] += kb;
  if (tracer_ != nullptr) {
    tracer_->OnGet(key, resource_, kb);
  }

  auto threshold = static_cast<uint64_t>(options_.gc_threshold *
                                         static_cast<double>(options_.capacity_kb));
  if (usage_kb_ > threshold && !gc_running_) {
    RunGc();
  }
  co_return Status::Ok();
}

void GcHeap::Free(uint64_t key, uint64_t kb) {
  auto it = live_by_key_.find(key);
  if (it == live_by_key_.end()) {
    return;
  }
  uint64_t freed = kb < it->second ? kb : it->second;
  it->second -= freed;
  if (it->second == 0) {
    live_by_key_.erase(it);
  }
  live_kb_ -= freed;
  if (tracer_ != nullptr) {
    tracer_->OnFree(key, resource_, freed);
  }
  // usage_kb_ keeps the garbage until the next GC cycle.
}

Coro GcHeap::RunGc() {
  co_await BindExecutor{executor_};
  gc_running_ = true;
  gc_done_ = std::make_shared<SimEvent>(executor_);
  TimeMicros pause =
      options_.gc_pause_base + options_.gc_pause_per_mb_live * (live_kb_ / 1024);
  co_await Delay{executor_, pause};
  usage_kb_ = live_kb_;  // garbage reclaimed
  gc_cycles_++;
  gc_running_ = false;
  gc_done_->Set();
}

}  // namespace atropos
