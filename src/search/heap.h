// JVM-style heap with stop-the-world garbage collection (Elasticsearch case
// c11).
//
// Requests allocate from a bounded heap; freed bytes become garbage that is
// only reclaimed by a GC cycle. When usage crosses the threshold a GC runs,
// pausing every allocation for a time proportional to the live set. A nested
// aggregation that keeps gigabytes live makes GCs both frequent and long —
// the culprit pattern of case c11.

#ifndef SRC_SEARCH_HEAP_H_
#define SRC_SEARCH_HEAP_H_

#include <memory>
#include <unordered_map>

#include "src/atropos/instrument.h"
#include "src/sim/coro.h"

namespace atropos {

struct GcHeapOptions {
  uint64_t capacity_kb = 4 * 1024 * 1024;  // 4 GB
  double gc_threshold = 0.80;              // GC when usage exceeds this fraction
  TimeMicros gc_pause_per_mb_live = 40;    // stop-the-world cost per live MB
  TimeMicros gc_pause_base = 2000;
  TimeMicros alloc_cost_per_mb = 10;
};

class GcHeap {
 public:
  GcHeap(Executor& executor, const GcHeapOptions& options, OverloadController* tracer,
         ResourceId resource)
      : executor_(executor), options_(options), tracer_(tracer), resource_(resource) {}

  // Allocates `kb` for task `key`; blocks during GC pauses and may trigger
  // one. Tracing: get on allocation, wait bracketing across GC stalls.
  Task<Status> Allocate(uint64_t key, uint64_t kb, CancelToken* token);

  // Releases `kb` of task `key`'s live set (becomes garbage until GC).
  void Free(uint64_t key, uint64_t kb);

  uint64_t usage_kb() const { return usage_kb_; }
  uint64_t live_kb() const { return live_kb_; }
  uint64_t LiveOf(uint64_t key) const {
    auto it = live_by_key_.find(key);
    return it == live_by_key_.end() ? 0 : it->second;
  }
  uint64_t gc_cycles() const { return gc_cycles_; }
  bool gc_running() const { return gc_running_; }

 private:
  Coro RunGc();

  Executor& executor_;
  GcHeapOptions options_;
  OverloadController* tracer_;
  ResourceId resource_;

  uint64_t usage_kb_ = 0;  // live + garbage
  uint64_t live_kb_ = 0;
  std::unordered_map<uint64_t, uint64_t> live_by_key_;
  bool gc_running_ = false;
  uint64_t gc_cycles_ = 0;
  std::shared_ptr<SimEvent> gc_done_;
};

}  // namespace atropos

#endif  // SRC_SEARCH_HEAP_H_
