// CancellableMutex: a strict-FIFO mutex for real OS threads whose waiters can
// be aborted *in place* by a lock-free initiator (CQS-style abortable
// synchronization; see src/sync/abort_cell.h for the protocol and DESIGN.md
// §16 for the layer).
//
// Without abortable waits, a cancelled task parked on the keyspace lock keeps
// its victims waiting until it wins the lock and reaches its next checkpoint:
// cancellation latency is O(time-to-next-checkpoint). Here the initiator's
// AbortCell::TryAbort CASes the parked waiter's cell to kCancelled and wakes
// it; the waiter unlinks itself and returns kCancelled without ever holding
// the lock.
//
// The internal std::mutex mu_ is a bounded leaf lock: it guards only the wait
// list and the held bit, is only ever taken by waiters and releasers (never
// by the cancellation initiator), and no other lock is acquired under it.

#ifndef SRC_SYNC_CANCELLABLE_MUTEX_H_
#define SRC_SYNC_CANCELLABLE_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/common/thread_annotations.h"
#include "src/sync/abort_cell.h"
#include "src/sync/cancel_mode.h"

namespace atropos {

enum class SyncOutcome {
  kAcquired = 0,
  kCancelled = 1,
};

class CancellableMutex {
 public:
  explicit CancellableMutex(CancelMode mode = CancelMode::kSmart) : mode_(mode) {}

  CancellableMutex(const CancellableMutex&) = delete;
  CancellableMutex& operator=(const CancellableMutex&) = delete;

  // Acquires for task `key`. `cell` hosts the parked wait and makes it
  // abortable (null: the wait is uninterruptible — the checkpoint-polling
  // baseline). `signal` is re-checked after enqueue so a cancellation racing
  // the park is never lost; a raised signal aborts without acquiring. A wake
  // in the cancelled state with `signal` NOT raised is a stale TryAbort that
  // landed on this recycled cell (abort_cell.h): the waiter re-enters the
  // wait instead of reporting a cancellation it was never addressed.
  SyncOutcome Acquire(uint64_t key, AbortCell* cell, const CancelSignal* signal);

  // Plain blocking acquire (no cancellation surface).
  void Acquire() { Acquire(0, nullptr, nullptr); }

  bool TryAcquire();
  void Release();

  // For a mutex the two CQS modes coincide — a cancelled waiter holds no
  // units whose grant could transfer, and the release path already skips
  // cancelled cells — but the mode is kept for API uniformity with the
  // semaphore, where the difference is observable.
  CancelMode cancel_mode() const { return mode_; }

  size_t waiter_count();
  bool held();

  // Waits aborted in place (initiator CAS or pre-park self-abort). A value
  // greater than zero under a convoy is the direct evidence that cancelled
  // waiters left the queue without acquiring.
  uint64_t aborted_waits() const { return aborted_waits_.load(std::memory_order_relaxed); }
  uint64_t contended_acquires() const { return contended_.load(std::memory_order_relaxed); }
  // Stale aborts that landed on a recycled cell and were re-entered instead
  // of surfacing as cancellations (expected to be rare; never user-visible).
  uint64_t spurious_aborts() const { return spurious_aborts_.load(std::memory_order_relaxed); }

 private:
  const CancelMode mode_;
  std::mutex mu_;
  bool held_ ATROPOS_GUARDED_BY(mu_) = false;
  CellList waiters_ ATROPOS_GUARDED_BY(mu_);

  std::atomic<uint64_t> aborted_waits_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> spurious_aborts_{0};
};

}  // namespace atropos

#endif  // SRC_SYNC_CANCELLABLE_MUTEX_H_
