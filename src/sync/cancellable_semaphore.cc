#include "src/sync/cancellable_semaphore.h"

namespace atropos {

SyncOutcome CancellableSemaphore::Acquire(uint64_t key, uint64_t units, AbortCell* cell,
                                          const CancelSignal* signal) {
  if (signal != nullptr && signal->Raised()) {
    aborted_waits_.fetch_add(1, std::memory_order_relaxed);
    return SyncOutcome::kCancelled;
  }

  AbortCell local;
  AbortCell* c = cell != nullptr ? cell : &local;

  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (waiters_.empty() && available_ >= units) {
        available_ -= units;
        return SyncOutcome::kAcquired;
      }
      c->BeginWait(key, units);
      waiters_.PushBack(c);
      // Dekker re-check (abort_cell.h): see the cancel word the initiator may
      // have stored before our wait_key was visible.
      if (signal != nullptr && signal->Raised()) {
        c->CancelSelf();
        waiters_.Remove(c);  // we are the tail; removal can't unblock anyone
        c->EndWait();
        aborted_waits_.fetch_add(1, std::memory_order_relaxed);
        return SyncOutcome::kCancelled;
      }
    }

    c->Park();

    if (c->state() == AbortCell::kGranted) {
      // The granter already debited available_ and unlinked the cell.
      c->EndWait();
      return SyncOutcome::kAcquired;
    }

    // Aborted in place: unlink and, in smart mode, transfer the grant — a
    // cancelled multi-unit head may have been the only thing blocking smaller
    // requests behind it.
    {
      std::lock_guard<std::mutex> lk(mu_);
      waiters_.Remove(c);
      if (mode_ == CancelMode::kSmart) {
        GrantLocked();
      }
    }
    c->EndWait();

    // Stale-abort validation (abort_cell.h): a kCancelled wake whose keyed
    // signal is not raised means a delayed TryAbort aimed at a previous
    // occupant of this recycled cell hit our wait. Re-enter — the grant pass
    // above already repaired the chain past us, so re-queueing is safe.
    if (signal != nullptr && !signal->Raised()) {
      spurious_aborts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    aborted_waits_.fetch_add(1, std::memory_order_relaxed);
    return SyncOutcome::kCancelled;
  }
}

bool CancellableSemaphore::TryAcquire(uint64_t units) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!waiters_.empty() || available_ < units) {
    return false;
  }
  available_ -= units;
  return true;
}

void CancellableSemaphore::Release(uint64_t units) {
  std::lock_guard<std::mutex> lk(mu_);
  available_ += units;
  GrantLocked();
}

void CancellableSemaphore::GrantLocked() {
  while (AbortCell* head = waiters_.front()) {
    if (head->state() == AbortCell::kCancelled) {
      // The waiter was aborted but has not unlinked itself yet; it wakes,
      // finds itself unlinked, and returns kCancelled. Skipping it here is
      // what keeps a cancelled cell from stranding the units behind it.
      waiters_.Remove(head);
      continue;
    }
    if (head->amount() > available_) {
      return;  // strict FIFO: nobody barges past an unsatisfiable head
    }
    // Unlink before the grant CAS: the moment TryGrant succeeds the waiter
    // may wake, retract the cell, and reuse it elsewhere — it must already
    // be off this list by then.
    const uint64_t units = head->amount();
    waiters_.Remove(head);
    if (head->TryGrant()) {
      available_ -= units;
    }
    // else: aborted between the state check and the CAS; it wakes unlinked.
  }
}

uint64_t CancellableSemaphore::available() {
  std::lock_guard<std::mutex> lk(mu_);
  return available_;
}

size_t CancellableSemaphore::waiter_count() {
  std::lock_guard<std::mutex> lk(mu_);
  return waiters_.size();
}

}  // namespace atropos
