// AbortableQueue<T>: a bounded FIFO whose *queued* items can be cancelled in
// place by a lock-free initiator (DESIGN.md §16).
//
// The live server's request queue is the first wait a task performs; without
// in-place abort, cancelling a still-queued task is a miss — the order only
// takes effect if the overload lasts until a worker dequeues it. Here the
// initiator marks the item's slot and the dequeuing worker completes it as
// cancelled without executing it: the queue wait itself became a
// cancellation point.
//
// Delivery uses the same keyed protocol as the CancelBoard: each slot carries
// the occupant's key and a cancel word; AbortKey stores the key it intends to
// cancel into the word, and the consumer compares the word against the
// occupant's key at pop time. A store that lands after the slot was recycled
// can never match the new occupant's (unique) key, so a stale abort is
// harmless — no generation counter needed.
//
// A mark racing the pop of its own slot is resolved by a Dekker pairing on
// the slot's key: the popper retracts the key (store 0) *before* it reads the
// cancel word, and AbortKey re-loads the key *after* storing the word. In the
// seq_cst total order one side observes the other — either the popper sees
// the mark and completes the item as cancelled, or AbortKey sees the
// retracted key and reports kRaced so the caller can chase the task to its
// executing home (LiveServer::DeliverCancel retries the CancelBoard).
//
// Locking: one internal mutex for producers/consumers; AbortKey touches only
// the slots' atomics (safe from the Atropos control loop, lint-clean under
// cancel-action-safety).

#ifndef SRC_SYNC_ABORTABLE_QUEUE_H_
#define SRC_SYNC_ABORTABLE_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace atropos {

template <typename T>
class AbortableQueue {
 public:
  enum class PopStatus {
    kItem = 0,     // a live item; execute it
    kAborted = 1,  // cancelled while queued; complete without executing
    kClosed = 2,   // queue closed and drained; consumer should exit
  };

  struct Popped {
    PopStatus status = PopStatus::kClosed;
    T item{};
  };

  enum class AbortResult {
    kMiss = 0,     // key not queued (never was, or already popped and gone)
    kAborted = 1,  // slot marked; the popper is guaranteed to see the mark
    kRaced = 2,    // a consumer popped the slot mid-mark and may have missed
                   // it: the task is executing (or draining) — chase it there
  };

  // Capacity 0 would make every slot index a modulo-by-zero; clamp to one
  // slot rather than propagate the caller's degenerate config as UB.
  explicit AbortableQueue(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

  AbortableQueue(const AbortableQueue&) = delete;
  AbortableQueue& operator=(const AbortableQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  bool Push(T item, uint64_t key) {
    return Push(std::move(item), key, [] {});
  }

  // Producer. False when full or closed (the caller sheds). `under_lock` runs
  // while the queue mutex is held, after the slot is filled but before any
  // consumer can observe the item — the hook the live server uses to emit its
  // lifecycle events strictly before the request becomes visible.
  template <typename Fn>
  bool Push(T item, uint64_t key, Fn&& under_lock) {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_ || count_ == slots_.size()) {
      return false;
    }
    Slot& s = slots_[tail_ % slots_.size()];
    s.item = std::move(item);
    s.cancel_key.store(0, std::memory_order_seq_cst);
    s.key.store(key, std::memory_order_seq_cst);
    tail_++;
    count_++;
    under_lock();
    cv_.notify_one();
    return true;
  }

  // Consumer; blocks until an item arrives or the queue closes.
  Popped Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) {
      return Popped{};  // closed and drained
    }
    return PopLocked();
  }

  // Initiator side: lock-free, allocation-free scan marking the queued item
  // with `key` cancelled in place. kAborted is a guarantee, not a hope: the
  // post-store key re-load below Dekker-pairs with PopLocked's retract-then-
  // read, so a mark acknowledged here is always observed by the popper.
  AbortResult AbortKey(uint64_t key) {
    if (key == 0) {
      return AbortResult::kMiss;
    }
    for (Slot& s : slots_) {
      if (s.key.load(std::memory_order_seq_cst) == key) {
        s.cancel_key.store(key, std::memory_order_seq_cst);
        // Dekker re-check: if the key is still published, the popper has not
        // retracted it yet, and its later cancel-word read must see our
        // store. If it is gone, the pop raced us and may have read the word
        // before the mark landed — report kRaced instead of claiming a
        // delivery that may never take effect. The stale mark itself is
        // harmless: it holds this (unique) key and cannot match a future
        // occupant of the slot.
        if (s.key.load(std::memory_order_seq_cst) == key) {
          aborted_.fetch_add(1, std::memory_order_relaxed);
          return AbortResult::kAborted;
        }
        return AbortResult::kRaced;
      }
    }
    return AbortResult::kMiss;
  }

  // Shutdown: rejects further pushes, returns everything still queued
  // (including aborted items — the caller sheds them all), and wakes every
  // parked consumer so Pop returns kClosed.
  std::vector<T> CloseAndDrain() {
    std::vector<T> drained;
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    drained.reserve(count_);
    while (count_ > 0) {
      drained.push_back(std::move(PopLocked().item));
    }
    cv_.notify_all();
    return drained;
  }

  size_t size() {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }

  // Items marked cancelled while queued (delivery count; a mark can still be
  // superseded by shutdown draining the item as shed).
  uint64_t aborted_in_queue() const { return aborted_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // The initiator scans keys while producers/consumers churn neighbouring
    // slots; keep each slot's atomics on their own line.
    alignas(64) std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> cancel_key{0};
    T item{};
  };

  Popped PopLocked() ATROPOS_REQUIRES(mu_) {
    Slot& s = slots_[head_ % slots_.size()];
    Popped out;
    out.item = std::move(s.item);
    const uint64_t key = s.key.load(std::memory_order_seq_cst);
    // Retract the key BEFORE reading the cancel word: this is the popper's
    // half of the Dekker pairing with AbortKey (store word, re-load key). A
    // mark we miss here is one AbortKey reported as kRaced, never kAborted.
    s.key.store(0, std::memory_order_seq_cst);
    out.status = s.cancel_key.load(std::memory_order_seq_cst) == key && key != 0
                     ? PopStatus::kAborted
                     : PopStatus::kItem;
    head_++;
    count_--;
    return out;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  // slots_ itself is deliberately NOT guarded: AbortKey scans the slot
  // atomics lock-free from the cancellation initiator.
  std::vector<Slot> slots_;
  size_t head_ ATROPOS_GUARDED_BY(mu_) = 0;   // next slot to pop (mod capacity)
  size_t tail_ ATROPOS_GUARDED_BY(mu_) = 0;   // next slot to fill (mod capacity)
  size_t count_ ATROPOS_GUARDED_BY(mu_) = 0;  // occupied slots
  bool closed_ ATROPOS_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> aborted_{0};
};

}  // namespace atropos

#endif  // SRC_SYNC_ABORTABLE_QUEUE_H_
