// Cancellation modes for abortable synchronization, after CQS (PAPERS.md):
//
//   kSmart:  a cancelled waiter is physically unlinked at cancellation time
//            and the grant chain is repaired immediately — if removing it
//            makes the next eligible waiter grantable (e.g. a large semaphore
//            request was blocking smaller ones), that waiter is granted
//            without waiting for the next release.
//   kSimple: the cancelled waiter is still unlinked (its storage is reused),
//            but the grant pass is deferred to the next release — the cheap
//            mode when cancellation is rare and releases are frequent.
//
// Both modes preserve the CQS safety invariants: a cancelled waiter never
// acquires, and no wakeup is lost. The modes differ only in *when* a
// cancellation unblocks waiters queued behind the cancelled one.

#ifndef SRC_SYNC_CANCEL_MODE_H_
#define SRC_SYNC_CANCEL_MODE_H_

namespace atropos {

enum class CancelMode {
  kSmart = 0,
  kSimple = 1,
};

}  // namespace atropos

#endif  // SRC_SYNC_CANCEL_MODE_H_
