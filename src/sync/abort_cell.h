// AbortCell: the rendezvous between a thread parked inside an abortable
// synchronization primitive and a cancellation initiator that must never
// block (paper §3.6, atropos_lint cancel-action-safety).
//
// The cell is the CQS "cell" specialized to one wait per owner: a worker
// thread parks on at most one primitive at a time, so the live CancelBoard
// embeds one reusable cell per worker slot and the cell's storage outlives
// every wait it hosts (no allocation, no dangling pointers from the
// initiator's side).
//
// Linearization: the cell's state word is the single CAS point between grant
// and cancel. The grantor CASes kWaiting -> kGranted under the primitive's
// internal mutex; the initiator CASes kWaiting -> kCancelled lock-free.
// Exactly one wins, so a cancelled waiter can never acquire and a granted
// waiter can never be half-cancelled.
//
// Lost-wakeup freedom is the Dekker pairing on seq_cst operations:
//
//   waiter:     publish wait_key --------- then load cancel word (CancelSignal)
//   initiator:  store cancel word -------- then load wait_key (TryAbort)
//
// In the seq_cst total order at least one side observes the other: either
// TryAbort sees the published wait_key and CASes the cell, or the waiter's
// post-publish signal check sees the cancel word and self-aborts before
// parking. Parking itself is futex-style (std::atomic::wait on the state
// word), so there is no separate predicate/sleep window to race with.
//
// Stale aborts and the validation protocol. TryAbort is check-then-act: it
// loads wait_key_, then CASes the separate state word. An initiator preempted
// between the two can see its CAS land on a *recycled* cell — the wait it
// targeted resolved, EndWait ran, and a successor task's BeginWait re-armed
// the same per-worker cell — spuriously cancelling an untargeted wait. The
// key guard narrows the window (a stale CAS aimed at an already-retracted key
// usually misses) but cannot close it without widening the CAS to cover the
// key. Instead the *waiter* closes it: initiators are required to store the
// keyed cancel word BEFORE calling TryAbort, so a waiter that wakes
// kCancelled re-checks its own CancelSignal — raised means the abort was
// genuinely addressed to it; not raised means the CAS was a stale leftover
// and the waiter re-enters the wait (CancellableMutex/Semaphore::Acquire).
// A spurious abort therefore costs one extra trip through the wait queue and
// is counted (spurious_aborts()), never observed as a cancellation.

#ifndef SRC_SYNC_ABORT_CELL_H_
#define SRC_SYNC_ABORT_CELL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace atropos {

// The cancellation word a request handler polls at checkpoints. The initiator
// stores *the key it intends to cancel* into the word; the signal compares it
// against its own task's key, so a store aimed at a previous task can never
// read as a cancellation of the current one (the keyed-delivery fix for the
// CancelBoard's clear-then-publish race).
class CancelSignal {
 public:
  CancelSignal() = default;
  CancelSignal(const std::atomic<uint64_t>* word, uint64_t key) : word_(word), key_(key) {}

  bool Raised() const {
    return word_ != nullptr && word_->load(std::memory_order_seq_cst) == key_;
  }
  uint64_t key() const { return key_; }

 private:
  const std::atomic<uint64_t>* word_ = nullptr;
  uint64_t key_ = 0;
};

class AbortCell {
 public:
  enum State : uint32_t {
    kIdle = 0,      // not hosting a wait
    kWaiting = 1,   // parked (or about to park) in a primitive
    kGranted = 2,   // the primitive handed the resource to this waiter
    kCancelled = 3  // aborted in place; the waiter must not acquire
  };

  AbortCell() = default;
  AbortCell(const AbortCell&) = delete;
  AbortCell& operator=(const AbortCell&) = delete;

  // ---- waiter side -------------------------------------------------------

  // Arms the cell for one wait on behalf of task `key`. The state must be
  // kWaiting *before* wait_key publishes: once an initiator can see the key,
  // its CAS must be able to land.
  void BeginWait(uint64_t key, uint64_t amount = 1) {
    amount_ = amount;
    state_.store(kWaiting, std::memory_order_seq_cst);
    wait_key_.store(key, std::memory_order_seq_cst);
  }

  // Retracts the cell after the wait resolved (granted, cancelled, or
  // self-aborted). Retract the key first so a late TryAbort for this key can
  // no longer CAS a recycled state.
  void EndWait() {
    wait_key_.store(0, std::memory_order_seq_cst);
    state_.store(kIdle, std::memory_order_seq_cst);
  }

  // Futex-style park until the state leaves kWaiting. Every transition out of
  // kWaiting notifies, so there is no lost-wakeup window.
  void Park() {
    uint32_t s = state_.load(std::memory_order_seq_cst);
    while (s == kWaiting) {
      state_.wait(kWaiting, std::memory_order_seq_cst);
      s = state_.load(std::memory_order_seq_cst);
    }
  }

  // The waiter observed its own cancel signal between enqueue and park; mark
  // the cell cancelled. Losing the CAS means the initiator's TryAbort already
  // did — either way the wait ends cancelled.
  void CancelSelf() {
    uint32_t expected = kWaiting;
    state_.compare_exchange_strong(expected, kCancelled, std::memory_order_seq_cst);
  }

  // ---- primitive side (called with the primitive's mutex held) -----------

  // Grant the resource to this waiter. False means a concurrent abort won the
  // cell; the caller must skip it (it never acquires).
  bool TryGrant() {
    uint32_t expected = kWaiting;
    if (state_.compare_exchange_strong(expected, kGranted, std::memory_order_seq_cst)) {
      state_.notify_all();
      return true;
    }
    return false;
  }

  // ---- initiator side (lock-free, allocation-free) -----------------------

  // Aborts the wait in place iff the cell is currently hosting a wait for
  // `key`. The key guard filters most stale aborts aimed at a previous wait,
  // but the load/CAS pair is not atomic: a CAS delayed past a recycle can
  // still land on a successor's kWaiting state. Callers MUST store the keyed
  // cancel word before invoking this, so the woken waiter can tell a genuine
  // abort (its signal is raised) from a stale one (it re-enters the wait) —
  // see the validation protocol in the header comment.
  bool TryAbort(uint64_t key) {
    if (key == 0 || wait_key_.load(std::memory_order_seq_cst) != key) {
      return false;
    }
    uint32_t expected = kWaiting;
    if (state_.compare_exchange_strong(expected, kCancelled, std::memory_order_seq_cst)) {
      state_.notify_all();
      return true;
    }
    return false;
  }

  uint32_t state() const { return state_.load(std::memory_order_seq_cst); }
  uint64_t amount() const { return amount_; }

 private:
  friend class CellList;

  std::atomic<uint32_t> state_{kIdle};
  std::atomic<uint64_t> wait_key_{0};
  uint64_t amount_ = 1;  // semaphore units requested; written before publish

  // Intrusive FIFO links, guarded by the owning primitive's mutex.
  AbortCell* next_ = nullptr;
  AbortCell* prev_ = nullptr;
  void* list_ = nullptr;
};

// Intrusive FIFO of cells. All operations require the owning primitive's
// mutex; membership is tracked through the cell's list_ pointer so Remove is
// idempotent and "is it still linked?" is a field test, not a scan.
class CellList {
 public:
  CellList() = default;
  CellList(const CellList&) = delete;
  CellList& operator=(const CellList&) = delete;

  bool empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }
  AbortCell* front() const { return head_; }
  bool Linked(const AbortCell* cell) const { return cell->list_ == this; }

  void PushBack(AbortCell* cell) {
    cell->list_ = this;
    cell->next_ = nullptr;
    cell->prev_ = tail_;
    if (tail_ != nullptr) {
      tail_->next_ = cell;
    } else {
      head_ = cell;
    }
    tail_ = cell;
    size_++;
  }

  void Remove(AbortCell* cell) {
    if (cell->list_ != this) {
      return;
    }
    if (cell->prev_ != nullptr) {
      cell->prev_->next_ = cell->next_;
    } else {
      head_ = cell->next_;
    }
    if (cell->next_ != nullptr) {
      cell->next_->prev_ = cell->prev_;
    } else {
      tail_ = cell->prev_;
    }
    cell->next_ = nullptr;
    cell->prev_ = nullptr;
    cell->list_ = nullptr;
    size_--;
  }

  AbortCell* PopFront() {
    AbortCell* cell = head_;
    if (cell != nullptr) {
      Remove(cell);
    }
    return cell;
  }

 private:
  AbortCell* head_ = nullptr;
  AbortCell* tail_ = nullptr;
  size_t size_ = 0;
};

// Everything a request handler needs to make its blocking points abortable:
// the keyed cancel signal it polls at checkpoints, and (when the abortable
// sync layer is enabled) the worker's cell to park on. A null cell means
// checkpoint-polling only — waits are uninterruptible, the pre-CQS baseline.
struct WaitContext {
  CancelSignal signal;
  AbortCell* cell = nullptr;
};

}  // namespace atropos

#endif  // SRC_SYNC_ABORT_CELL_H_
