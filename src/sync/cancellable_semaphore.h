// CancellableSemaphore: strict-FIFO counting semaphore for real OS threads
// with CQS-style abortable waits (src/sync/abort_cell.h, DESIGN.md §16).
//
// This is where the smart/simple cancellation modes differ observably: a
// cancelled multi-unit waiter at the head of the queue may be the only thing
// blocking smaller requests behind it. In kSmart mode the cancelling waiter
// re-runs the grant pass as it unlinks, transferring the head position to the
// next eligible waiter immediately; in kSimple mode the repair is deferred to
// the next Release (the CQS cleanup-on-resume economy).
//
// Invariants (checked by the sync storm tests):
//   - unit conservation: available + units held by granted-and-not-released
//     acquirers == capacity, always;
//   - a cancelled waiter never acquires (the cell CAS linearizes grant vs
//     cancel);
//   - no lost wakeups: every Acquire returns;
//   - no stranded units: after a release, every eligible waiter by FIFO order
//     is granted (cancelled cells cannot block the chain).

#ifndef SRC_SYNC_CANCELLABLE_SEMAPHORE_H_
#define SRC_SYNC_CANCELLABLE_SEMAPHORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/common/thread_annotations.h"
#include "src/sync/abort_cell.h"
#include "src/sync/cancel_mode.h"
#include "src/sync/cancellable_mutex.h"  // SyncOutcome

namespace atropos {

class CancellableSemaphore {
 public:
  explicit CancellableSemaphore(uint64_t capacity, CancelMode mode = CancelMode::kSmart)
      : mode_(mode), capacity_(capacity), available_(capacity) {}

  CancellableSemaphore(const CancellableSemaphore&) = delete;
  CancellableSemaphore& operator=(const CancellableSemaphore&) = delete;

  // Acquires `units` for task `key`, FIFO. Same cell/signal contract as
  // CancellableMutex::Acquire.
  SyncOutcome Acquire(uint64_t key, uint64_t units, AbortCell* cell, const CancelSignal* signal);

  // Non-blocking; strict FIFO (fails while anyone is queued).
  bool TryAcquire(uint64_t units = 1);
  void Release(uint64_t units = 1);

  CancelMode cancel_mode() const { return mode_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t available();
  size_t waiter_count();

  uint64_t aborted_waits() const { return aborted_waits_.load(std::memory_order_relaxed); }
  // Stale aborts re-entered instead of surfacing as cancellations (see
  // CancellableMutex::spurious_aborts and the abort_cell.h protocol).
  uint64_t spurious_aborts() const { return spurious_aborts_.load(std::memory_order_relaxed); }

 private:
  // Grants from the head while units fit, skipping cancelled cells.
  void GrantLocked() ATROPOS_REQUIRES(mu_);

  const CancelMode mode_;
  const uint64_t capacity_;
  std::mutex mu_;
  uint64_t available_ ATROPOS_GUARDED_BY(mu_);
  CellList waiters_ ATROPOS_GUARDED_BY(mu_);

  std::atomic<uint64_t> aborted_waits_{0};
  std::atomic<uint64_t> spurious_aborts_{0};
};

}  // namespace atropos

#endif  // SRC_SYNC_CANCELLABLE_SEMAPHORE_H_
