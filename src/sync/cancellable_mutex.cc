#include "src/sync/cancellable_mutex.h"

namespace atropos {

SyncOutcome CancellableMutex::Acquire(uint64_t key, AbortCell* cell, const CancelSignal* signal) {
  // Checkpoint before touching the lock: a task cancelled while running
  // should not join the queue at all.
  if (signal != nullptr && signal->Raised()) {
    aborted_waits_.fetch_add(1, std::memory_order_relaxed);
    return SyncOutcome::kCancelled;
  }

  // An uninstrumented caller still parks on a (stack) cell; it just isn't
  // reachable by any initiator.
  AbortCell local;
  AbortCell* c = cell != nullptr ? cell : &local;

  bool counted_contended = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!held_ && waiters_.empty()) {
        held_ = true;
        return SyncOutcome::kAcquired;
      }
      if (!counted_contended) {
        contended_.fetch_add(1, std::memory_order_relaxed);
        counted_contended = true;
      }
      c->BeginWait(key, 1);
      waiters_.PushBack(c);
      // Dekker re-check (abort_cell.h): an initiator that stored the cancel
      // word before our wait_key publish may have missed the cell; this load
      // is guaranteed to see its store.
      if (signal != nullptr && signal->Raised()) {
        c->CancelSelf();  // losing the CAS means the initiator already aborted us
        waiters_.Remove(c);
        c->EndWait();
        aborted_waits_.fetch_add(1, std::memory_order_relaxed);
        return SyncOutcome::kCancelled;
      }
    }

    c->Park();

    if (c->state() == AbortCell::kGranted) {
      // Release unlinked the cell before granting; held_ is still true.
      c->EndWait();
      return SyncOutcome::kAcquired;
    }

    // Aborted in place. Unlink (Release may already have skipped past us) and
    // retract the cell. No grant repair is needed: the lock is either held
    // (nothing to grant) or was released through the skip-cancelled loop
    // (which already granted past us).
    {
      std::lock_guard<std::mutex> lk(mu_);
      waiters_.Remove(c);
    }
    c->EndWait();

    // Validate the abort against our keyed signal (abort_cell.h protocol:
    // initiators store the cancel word before TryAbort, and while our task
    // occupies its board slot the word can only be 0 or our key). Not raised
    // means a stale CAS aimed at a previous occupant of this recycled cell
    // landed on our wait — re-enter; we were never the target.
    if (signal != nullptr && !signal->Raised()) {
      spurious_aborts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    aborted_waits_.fetch_add(1, std::memory_order_relaxed);
    return SyncOutcome::kCancelled;
  }
}

bool CancellableMutex::TryAcquire() {
  std::lock_guard<std::mutex> lk(mu_);
  if (held_ || !waiters_.empty()) {
    return false;  // strict FIFO: never barge past a queued waiter
  }
  held_ = true;
  return true;
}

void CancellableMutex::Release() {
  std::lock_guard<std::mutex> lk(mu_);
  while (AbortCell* head = waiters_.PopFront()) {
    if (head->TryGrant()) {
      return;  // handed over directly; held_ stays true
    }
    // The head lost its cell to a concurrent abort: skip it. It wakes, finds
    // itself unlinked, and returns kCancelled.
  }
  held_ = false;
}

size_t CancellableMutex::waiter_count() {
  std::lock_guard<std::mutex> lk(mu_);
  return waiters_.size();
}

bool CancellableMutex::held() {
  std::lock_guard<std::mutex> lk(mu_);
  return held_;
}

}  // namespace atropos
