// The cancellation-prevalence study behind Table 1 (paper §2.4).
//
// The paper manually reviews 151 popular open-source projects for (a) a
// general-purpose task-cancellation mechanism and (b) a built-in initiator
// that triggers it. The survey is data, not measurement: this module embeds
// the per-language aggregates (matching Table 1 exactly) plus a curated list
// of well-known exemplars with their documented cancellation initiators.

#ifndef SRC_STUDY_CANCELLATION_SURVEY_H_
#define SRC_STUDY_CANCELLATION_SURVEY_H_

#include <string>
#include <vector>

namespace atropos {

struct SurveyAggregate {
  std::string language;
  int applications = 0;
  int supporting_cancel = 0;
  int with_initiator = 0;
};

// Per-language rows of Table 1; totals: 151 studied, 115 (76%) support
// cancellation, 109 (95% of 115) expose an initiator.
const std::vector<SurveyAggregate>& SurveyAggregates();

struct SurveyExemplar {
  std::string application;
  std::string language;
  bool supports_cancel = false;
  bool has_initiator = false;
  std::string mechanism;  // the documented cancellation initiator
};

// Representative applications with documented cancellation mechanisms.
const std::vector<SurveyExemplar>& SurveyExemplars();

// Cross-checks that the aggregates are internally consistent (row sums match
// the Table 1 totals). Returns false if the dataset was corrupted.
bool ValidateSurvey();

}  // namespace atropos

#endif  // SRC_STUDY_CANCELLATION_SURVEY_H_
