#include "src/study/cancellation_survey.h"

namespace atropos {

const std::vector<SurveyAggregate>& SurveyAggregates() {
  static const std::vector<SurveyAggregate> kAggregates = {
      {"C/C++", 60, 49, 46},
      {"Java", 34, 25, 25},
      {"Go", 44, 32, 29},
      {"Python", 13, 9, 9},
  };
  return kAggregates;
}

const std::vector<SurveyExemplar>& SurveyExemplars() {
  static const std::vector<SurveyExemplar> kExemplars = {
      {"MySQL", "C/C++", true, true, "KILL QUERY / sql_kill() sets THD::killed, checked at row checkpoints"},
      {"PostgreSQL", "C/C++", true, true, "pg_cancel_backend() -> SIGINT -> CHECK_FOR_INTERRUPTS() macro"},
      {"MariaDB", "C/C++", true, true, "KILL [HARD|SOFT] via thd_kill_level checks"},
      {"SQLite", "C/C++", true, true, "sqlite3_interrupt() checked in the VDBE loop"},
      {"Redis", "C/C++", true, true, "CLIENT KILL / script kill flag polled by the Lua engine"},
      {"MongoDB", "C/C++", true, true, "killOp() marks OperationContext; checked at yield points"},
      {"Apache httpd", "C/C++", true, false, "graceful stop only; no per-request script termination (paper §5.2)"},
      {"nginx", "C/C++", true, true, "connection close aborts request processing at event boundaries"},
      {"RocksDB", "C/C++", true, true, "CancelAllBackgroundWork() and ROCKSDB manual compaction canceled flag"},
      {"ClickHouse", "C/C++", true, true, "KILL QUERY checked between processing blocks"},
      {"memcached", "C/C++", false, false, "simple per-op KV store; operations too short to cancel"},
      {"LevelDB", "C/C++", false, false, "library; no request abstraction"},
      {"Elasticsearch", "Java", true, true, "_tasks/_cancel API; CancellableTask::onCancelled"},
      {"Solr", "Java", true, true, "queryCancellation API / timeAllowed with cancellable collectors"},
      {"Lucene", "Java", true, true, "ExitableDirectoryReader checks QueryTimeout between docs"},
      {"Cassandra", "Java", true, true, "monitoring abort via MonitorableImpl::abort between rows"},
      {"HBase", "Java", true, true, "RpcCall abort + scanner lease expiry"},
      {"Kafka", "Java", true, true, "KafkaFuture.cancel / request purgatory expiry"},
      {"ZooKeeper", "Java", false, false, "requests are short atomic ops; no cancellation"},
      {"Hadoop YARN", "Java", true, true, "killApplication RPC cancels the app's containers"},
      {"etcd", "Go", true, true, "context.Context cancellation propagated through the request path"},
      {"CockroachDB", "Go", true, true, "CANCEL QUERY statement; ctx cancellation at batch boundaries"},
      {"Prometheus", "Go", true, true, "query ctx cancel; engine checks ctx.Err() per step"},
      {"Caddy", "Go", true, true, "http.Request context cancellation"},
      {"Kubernetes", "Go", true, true, "context cancellation + graceful pod termination"},
      {"TiDB", "Go", true, true, "KILL TIDB query id; checked per executor chunk"},
      {"bleve", "Go", true, false, "search library; cancellation left to the embedding app (case c16 link)"},
      {"Gunicorn", "Python", true, true, "worker timeout SIGKILL + graceful SIGTERM"},
      {"Celery", "Python", true, true, "task revoke(terminate=True)"},
      {"Django", "Python", false, false, "request handlers run to completion; no built-in kill"},
  };
  return kExemplars;
}

bool ValidateSurvey() {
  int total = 0;
  int supporting = 0;
  int initiator = 0;
  for (const SurveyAggregate& row : SurveyAggregates()) {
    if (row.supporting_cancel > row.applications || row.with_initiator > row.supporting_cancel) {
      return false;
    }
    total += row.applications;
    supporting += row.supporting_cancel;
    initiator += row.with_initiator;
  }
  // Table 1 totals: 151 studied, 115 supporting (76%), 109 with initiators
  // (95% of 115).
  if (total != 151 || supporting != 115 || initiator != 109) {
    return false;
  }
  for (const SurveyExemplar& e : SurveyExemplars()) {
    if (e.has_initiator && !e.supports_cancel) {
      return false;
    }
  }
  return true;
}

}  // namespace atropos
