// Integration-effort data behind Table 3 (paper §5.1).
//
// The paper reports the lines of code added to integrate Atropos into each of
// the six applications. This module embeds those numbers and pairs them with
// live measurements from this repository's simulated applications: how many
// Atropos resources each app registers and how many tracing events one second
// of its standard workload emits — the analogue of "how much instrumentation
// the integration produced".

#ifndef SRC_STUDY_INTEGRATION_EFFORT_H_
#define SRC_STUDY_INTEGRATION_EFFORT_H_

#include <string>
#include <vector>

namespace atropos {

struct IntegrationEffort {
  std::string software;
  std::string language;
  std::string category;
  std::string sloc;       // application size as reported by the paper
  int sloc_added = 0;     // paper: lines added for the Atropos integration
};

// The six rows of Table 3.
const std::vector<IntegrationEffort>& PaperIntegrationEffort();

struct RepoIntegration {
  std::string app;
  int resources_registered = 0;   // distinct application resources
  int background_tasks = 0;       // background tasks registered
  uint64_t trace_events = 0;      // tracing events in a 1 s reference run
};

// Measures the simulated apps live: constructs each with every subsystem
// enabled, runs one second of reference traffic against an AtroposRuntime,
// and reports the integration surface that resulted.
std::vector<RepoIntegration> MeasureRepoIntegration();

}  // namespace atropos

#endif  // SRC_STUDY_INTEGRATION_EFFORT_H_
