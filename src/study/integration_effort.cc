#include "src/study/integration_effort.h"

#include <memory>

#include "src/apps/minidb.h"
#include "src/apps/minikv.h"
#include "src/apps/minisearch.h"
#include "src/apps/miniweb.h"
#include "src/atropos/runtime.h"
#include "src/workload/frontend.h"

namespace atropos {

const std::vector<IntegrationEffort>& PaperIntegrationEffort() {
  static const std::vector<IntegrationEffort> kTable = {
      {"MySQL", "C/C++", "Database", "2.33 M", 74},
      {"PostgreSQL", "C/C++", "Database", "1.49 M", 59},
      {"Apache", "C/C++", "Web Server", "1.98 K", 30},
      {"Elasticsearch", "Java", "Search Engine", "3.2 M", 65},
      {"Solr", "Java", "Search Engine", "961 K", 47},
      {"etcd", "Go", "Key-Value Store", "244 K", 22},
  };
  return kTable;
}

namespace {

RepoIntegration MeasureApp(const std::string& name, std::unique_ptr<App> (*factory)(
                                                        Executor&, OverloadController*)) {
  Executor executor;
  AtroposConfig config;
  config.baseline_p99 = Millis(10);
  AtroposRuntime runtime(executor.clock(), config);
  std::unique_ptr<App> app = factory(executor, &runtime);
  runtime.SetControlSurface(app.get());

  int background = 0;
  int resources = 0;
  {
    // Count registered background tasks / resources before traffic runs.
    background = static_cast<int>(runtime.live_task_count());
    for (ResourceId id = 1; runtime.FindResource(id) != nullptr; id++) {
      resources++;
    }
  }

  FrontendOptions fopt;
  fopt.duration = Seconds(1);
  fopt.warmup = 0;
  fopt.retry_cancelled = false;
  Frontend frontend(executor, *app, runtime, fopt);
  TrafficSpec traffic;
  traffic.type = 0;  // each app's lightweight request type
  traffic.qps = 500;
  traffic.arg_modulo = 4;
  frontend.AddTraffic(traffic);
  frontend.Run();

  RepoIntegration out;
  out.app = name;
  out.resources_registered = resources;
  out.background_tasks = background;
  out.trace_events = runtime.stats().trace_events;
  return out;
}

std::unique_ptr<App> MakeDb(Executor& ex, OverloadController* ctl) {
  MiniDbOptions opt;
  opt.use_tickets = true;
  opt.use_table_locks = true;
  opt.use_buffer_pool = true;
  opt.use_undo = true;
  opt.use_mvcc = true;
  opt.use_wal = true;
  opt.use_io = true;
  return std::make_unique<MiniDb>(ex, ctl, opt);
}

std::unique_ptr<App> MakeWeb(Executor& ex, OverloadController* ctl) {
  return std::make_unique<MiniWeb>(ex, ctl, MiniWebOptions{});
}

std::unique_ptr<App> MakeSearch(Executor& ex, OverloadController* ctl) {
  MiniSearchOptions opt;
  opt.use_cache = true;
  opt.use_heap = true;
  opt.use_cpu = true;
  opt.use_doc_locks = true;
  opt.use_index_lock = true;
  opt.use_queue = true;
  return std::make_unique<MiniSearch>(ex, ctl, opt);
}

std::unique_ptr<App> MakeKv(Executor& ex, OverloadController* ctl) {
  return std::make_unique<MiniKv>(ex, ctl, MiniKvOptions{});
}

}  // namespace

std::vector<RepoIntegration> MeasureRepoIntegration() {
  std::vector<RepoIntegration> out;
  out.push_back(MeasureApp("minidb", &MakeDb));
  out.push_back(MeasureApp("miniweb", &MakeWeb));
  out.push_back(MeasureApp("minisearch", &MakeSearch));
  out.push_back(MeasureApp("minikv", &MakeKv));
  return out;
}

}  // namespace atropos
