// Simulated multi-core CPU with quantum-sliced FIFO sharing.
//
// A task consuming N microseconds of CPU repeatedly claims a core for one
// quantum and re-queues, which approximates round-robin processor sharing:
// long-running queries inflate the queueing delay of short requests — the
// contention mechanism behind case c12 (Elasticsearch CPU overload).

#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/coro.h"
#include "src/sim/executor.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace atropos {

// Receives per-slice accounting; applications adapt this to the Atropos
// tracing APIs (slowByResource for waits, get/free for occupancy).
class UsageObserver {
 public:
  virtual ~UsageObserver() = default;
  // `waited`: time spent queued before this slice; `used`: time the resource
  // was actually held/consumed.
  virtual void OnUsage(TimeMicros waited, TimeMicros used) = 0;
};

class CpuPool {
 public:
  CpuPool(Executor& executor, uint64_t cores, TimeMicros quantum = Millis(1))
      : executor_(executor), cores_(executor, cores), quantum_(quantum) {}

  // Consumes `cpu_time` of CPU in FIFO-contended quantum slices. Checks the
  // token between slices and aborts waits, returning kCancelled.
  Task<Status> Consume(TimeMicros cpu_time, CancelToken* token = nullptr,
                       UsageObserver* observer = nullptr);

  uint64_t cores() const { return cores_.capacity(); }
  size_t waiter_count() const { return cores_.waiter_count(); }
  uint64_t idle_cores() const { return cores_.available(); }
  TimeMicros quantum() const { return quantum_; }

 private:
  Executor& executor_;
  SimSemaphore cores_;
  TimeMicros quantum_;
};

// Serial I/O device with a fixed bandwidth; transfers queue FIFO. Models the
// disk the PostgreSQL vacuum saturates in case c8.
class IoDevice {
 public:
  IoDevice(Executor& executor, double bytes_per_second)
      : executor_(executor), lock_(executor), bytes_per_second_(bytes_per_second) {}

  Task<Status> Transfer(uint64_t bytes, CancelToken* token = nullptr,
                        UsageObserver* observer = nullptr);

  TimeMicros ServiceTime(uint64_t bytes) const {
    return static_cast<TimeMicros>(static_cast<double>(bytes) / bytes_per_second_ *
                                   static_cast<double>(kMicrosPerSecond));
  }

  size_t waiter_count() const { return lock_.waiter_count(); }
  bool busy() const { return lock_.held(); }

 private:
  Executor& executor_;
  SimMutex lock_;
  double bytes_per_second_;
};

}  // namespace atropos

#endif  // SRC_SIM_CPU_H_
