// Blocking synchronization primitives for simulated tasks.
//
// All primitives are strictly FIFO — the property that produces real lock
// convoys (a queued exclusive request blocks all later shared requests), which
// is the mechanism behind several of the paper's overload cases (c1, c4, c14).
// Every blocking operation accepts an optional CancelToken so Atropos
// cancellation can abort a wait in progress.
//
// Cancellation follows the CQS smart/simple split (src/sync/cancel_mode.h).
// The coroutine substrate always unlinks a cancelled node eagerly — the node
// lives in the cancelled coroutine's frame, which resumes and may unwind, so
// leaving it linked (textbook simple mode) would dangle. The observable
// difference is therefore the grant pass: kSmart (default, the historical
// behavior — fuzz-corpus digests are byte-stable) repairs the grant chain at
// cancellation time; kSimple defers it to the next release.

#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/executor.h"
#include "src/sim/wait.h"
#include "src/sync/cancel_mode.h"

namespace atropos {

// One-shot broadcast event. Wait() parks until Set(); once set, waits complete
// immediately.
class SimEvent final : public WaiterOwner {
 public:
  explicit SimEvent(Executor& executor) : executor_(executor) {}

  class Waiter {
   public:
    Waiter(SimEvent& event, CancelToken* token) : event_(event), token_(token) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() { return node_.result; }

   private:
    SimEvent& event_;
    CancelToken* token_;
    WaitNode node_;
  };

  // co_await event.Wait() -> Status (kOk once set, kCancelled if aborted).
  Waiter Wait(CancelToken* token = nullptr) { return Waiter(*this, token); }

  void Set();
  bool is_set() const { return set_; }
  void ResetForReuse() { set_ = false; }

  void CancelWaiter(WaitNode& node) override;

 private:
  friend class Waiter;
  void CompleteNode(WaitNode* node, Status status);

  Executor& executor_;
  bool set_ = false;
  WaitList waiters_;
};

// FIFO mutex.
class SimMutex final : public WaiterOwner {
 public:
  explicit SimMutex(Executor& executor) : executor_(executor) {}

  class Acquirer {
   public:
    Acquirer(SimMutex& mutex, CancelToken* token) : mutex_(mutex), token_(token) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() { return node_.result; }

   private:
    SimMutex& mutex_;
    CancelToken* token_;
    WaitNode node_;
  };

  Acquirer Acquire(CancelToken* token = nullptr) { return Acquirer(*this, token); }
  void Release();

  bool held() const { return held_; }
  size_t waiter_count() const { return waiters_.size(); }

  // For a mutex both modes behave identically (a cancelled waiter holds no
  // grant to transfer); kept for API uniformity with the semaphore/rwlock.
  void set_cancel_mode(CancelMode mode) { cancel_mode_ = mode; }
  CancelMode cancel_mode() const { return cancel_mode_; }

  void CancelWaiter(WaitNode& node) override;

 private:
  friend class Acquirer;
  void CompleteNode(WaitNode* node, Status status);

  Executor& executor_;
  bool held_ = false;
  CancelMode cancel_mode_ = CancelMode::kSmart;
  WaitList waiters_;
};

// Counting semaphore with multi-unit FIFO acquire. Used for InnoDB-style
// concurrency tickets, worker pools, and memory-pool admission.
class SimSemaphore final : public WaiterOwner {
 public:
  SimSemaphore(Executor& executor, uint64_t capacity)
      : executor_(executor), capacity_(capacity), available_(capacity) {}

  class Acquirer {
   public:
    Acquirer(SimSemaphore& sem, uint64_t units, CancelToken* token)
        : sem_(sem), units_(units), token_(token) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() { return node_.result; }

   private:
    SimSemaphore& sem_;
    uint64_t units_;
    CancelToken* token_;
    WaitNode node_;
  };

  Acquirer Acquire(uint64_t units = 1, CancelToken* token = nullptr) {
    return Acquirer(*this, units, token);
  }
  // Non-blocking variant; returns false without side effects if it would block.
  bool TryAcquire(uint64_t units = 1);
  void Release(uint64_t units = 1);

  uint64_t available() const { return available_; }
  uint64_t capacity() const { return capacity_; }
  size_t waiter_count() const { return waiters_.size(); }

  // kSmart (default): cancelling a queued waiter immediately grants any
  // smaller requests it was blocking. kSimple: they wait for the next
  // Release (CQS cleanup-on-resume economy).
  void set_cancel_mode(CancelMode mode) { cancel_mode_ = mode; }
  CancelMode cancel_mode() const { return cancel_mode_; }

  void CancelWaiter(WaitNode& node) override;

 private:
  friend class Acquirer;
  void GrantWaiters();
  void CompleteNode(WaitNode* node, Status status);

  Executor& executor_;
  uint64_t capacity_;
  uint64_t available_;
  CancelMode cancel_mode_ = CancelMode::kSmart;
  WaitList waiters_;
};

// FIFO reader-writer lock with convoy semantics: requests are granted strictly
// in arrival order; consecutive readers at the head are granted together.
class SimRwLock final : public WaiterOwner {
 public:
  explicit SimRwLock(Executor& executor) : executor_(executor) {}

  static constexpr int kReader = 1;
  static constexpr int kWriter = 2;

  class Acquirer {
   public:
    Acquirer(SimRwLock& lock, int mode, CancelToken* token)
        : lock_(lock), mode_(mode), token_(token) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() { return node_.result; }

   private:
    SimRwLock& lock_;
    int mode_;
    CancelToken* token_;
    WaitNode node_;
  };

  Acquirer AcquireShared(CancelToken* token = nullptr) { return Acquirer(*this, kReader, token); }
  Acquirer AcquireExclusive(CancelToken* token = nullptr) { return Acquirer(*this, kWriter, token); }
  void ReleaseShared();
  void ReleaseExclusive();

  int active_readers() const { return active_readers_; }
  bool writer_held() const { return writer_held_; }
  size_t waiter_count() const { return waiters_.size(); }
  // True if the next queued request (if any) is exclusive — i.e. a convoy is
  // forming behind a writer.
  bool writer_queued() const { return !waiters_.empty() && waiters_.front()->tag == kWriter; }

  // kSmart (default): cancelling a queued writer immediately admits the
  // readers queued behind it. kSimple: they wait for the next release.
  void set_cancel_mode(CancelMode mode) { cancel_mode_ = mode; }
  CancelMode cancel_mode() const { return cancel_mode_; }

  void CancelWaiter(WaitNode& node) override;

 private:
  friend class Acquirer;
  void GrantWaiters();
  void CompleteNode(WaitNode* node, Status status);

  Executor& executor_;
  int active_readers_ = 0;
  bool writer_held_ = false;
  CancelMode cancel_mode_ = CancelMode::kSmart;
  WaitList waiters_;
};

}  // namespace atropos

#endif  // SRC_SIM_SYNC_H_
