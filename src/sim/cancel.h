// Cancellation tokens for simulated tasks.
//
// A CancelToken is the simulation-side analogue of an application's
// cancellation flag (the pattern §2.4 of the paper observes in 76% of studied
// applications): the cancellation initiator sets it, the task observes it at
// safe checkpoints, and any waits the task is currently blocked in are aborted
// with StatusCode::kCancelled.

#ifndef SRC_SIM_CANCEL_H_
#define SRC_SIM_CANCEL_H_

#include <cstdint>
#include <vector>

#include "src/sim/executor.h"
#include "src/sim/wait.h"

namespace atropos {

class CancelToken {
 public:
  explicit CancelToken(Executor& executor) : executor_(executor) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Sets the cancelled flag and aborts every registered wait. Idempotent
  // within one cancellation epoch.
  void Cancel() {
    if (cancelled_) {
      return;
    }
    cancelled_ = true;
    cancel_count_++;
    // Detach first: CancelWaiter may trigger grant logic that touches tokens.
    std::vector<WaitNode*> waiters;
    waiters.swap(waiters_);
    for (WaitNode* node : waiters) {
      node->token = nullptr;
      node->owner->CancelWaiter(*node);
    }
  }

  bool cancelled() const { return cancelled_; }

  // Number of times this token has been cancelled across epochs. Atropos'
  // fairness rule ("each task can be canceled at most once", §4) reads this.
  uint64_t cancel_count() const { return cancel_count_; }

  // Clears the flag so the task can be re-executed (§4 re-execution).
  void Reset() { cancelled_ = false; }

  Executor& executor() { return executor_; }

  // Wait registration — called by primitives, not by applications.
  void Register(WaitNode* node) { waiters_.push_back(node); }
  void Unregister(WaitNode* node) {
    for (size_t i = 0; i < waiters_.size(); i++) {
      if (waiters_[i] == node) {
        waiters_[i] = waiters_.back();
        waiters_.pop_back();
        return;
      }
    }
  }

 private:
  Executor& executor_;
  bool cancelled_ = false;
  uint64_t cancel_count_ = 0;
  std::vector<WaitNode*> waiters_;
};

}  // namespace atropos

#endif  // SRC_SIM_CANCEL_H_
