#include "src/sim/cpu.h"

#include <algorithm>

namespace atropos {

Task<Status> CpuPool::Consume(TimeMicros cpu_time, CancelToken* token, UsageObserver* observer) {
  TimeMicros remaining = cpu_time;
  while (remaining > 0) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("cpu consume cancelled at checkpoint");
    }
    TimeMicros wait_start = executor_.now();
    Status s = co_await cores_.Acquire(1, token);
    if (!s.ok()) {
      co_return s;
    }
    TimeMicros waited = executor_.now() - wait_start;
    TimeMicros slice = std::min(quantum_, remaining);
    co_await Delay{executor_, slice};
    cores_.Release(1);
    remaining -= slice;
    if (observer != nullptr) {
      observer->OnUsage(waited, slice);
    }
  }
  co_return Status::Ok();
}

Task<Status> IoDevice::Transfer(uint64_t bytes, CancelToken* token, UsageObserver* observer) {
  TimeMicros wait_start = executor_.now();
  Status s = co_await lock_.Acquire(token);
  if (!s.ok()) {
    co_return s;
  }
  TimeMicros waited = executor_.now() - wait_start;
  TimeMicros service = ServiceTime(bytes);
  co_await Delay{executor_, service};
  lock_.Release();
  if (observer != nullptr) {
    observer->OnUsage(waited, service);
  }
  co_return Status::Ok();
}

}  // namespace atropos
