// Detached simulation processes as C++20 coroutines.
//
// A Coro is an eagerly-started, self-destroying coroutine — the SimPy-style
// "process". Application request handlers and background tasks are Coros; they
// suspend on awaitables (Delay, lock acquires, queue pops) and are resumed by
// the Executor at the right virtual time.

#ifndef SRC_SIM_CORO_H_
#define SRC_SIM_CORO_H_

#include <coroutine>
#include <utility>

#include "src/common/clock.h"
#include "src/sim/executor.h"

namespace atropos {

// Fire-and-forget coroutine. The frame owns itself: it starts running as soon
// as the coroutine function is called and destroys itself when it finishes.
// Completion signalling, when needed, is done explicitly (e.g. via SimEvent or
// a metrics callback) — exactly how real request handlers report completion.
class Coro {
 public:
  struct promise_type {
    Executor* executor = nullptr;

    Coro get_return_object() { return Coro{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept {
      if (executor != nullptr) {
        executor->OnProcFinished();
      }
      return {};
    }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

// Awaitable that binds the enclosing Coro to an executor (for live-process
// accounting) — every process should `co_await BindExecutor{ex}` first.
// Implemented as an immediate (non-suspending) awaitable.
struct BindExecutor {
  Executor& executor;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<Coro::promise_type> h) noexcept {
    h.promise().executor = &executor;
    executor.OnProcStarted();
    return false;  // do not actually suspend
  }
  void await_resume() const noexcept {}
};

// Suspends the process for `delay` virtual microseconds.
struct Delay {
  Executor& executor;
  TimeMicros delay;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { executor.ResumeAfter(delay, h); }
  void await_resume() const noexcept {}
};

// Yields the processor: re-schedules at the current virtual time, behind any
// already-queued events. Useful to break ties deterministically.
struct YieldNow {
  Executor& executor;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { executor.ResumeAfter(0, h); }
  void await_resume() const noexcept {}
};

}  // namespace atropos

#endif  // SRC_SIM_CORO_H_
