// Joinable coroutine type for composing simulation logic.
//
// Task<T> is a lazy coroutine: it starts when awaited and resumes its awaiter
// when it finishes (symmetric transfer). Application helpers (acquire-a-page,
// consume-cpu, write-wal, ...) return Task<Status> so request handlers — which
// are detached Coros — can compose them with plain co_await.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <optional>
#include <utility>

namespace atropos {

template <typename T>
class Task;

namespace internal {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { std::terminate(); }
};

}  // namespace internal

template <typename T>
class Task {
 public:
  struct promise_type : internal::TaskPromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // start the task
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace atropos

#endif  // SRC_SIM_TASK_H_
