// Deterministic discrete-event executor.
//
// The executor owns the virtual clock and a time-ordered event heap. Events at
// equal timestamps fire in submission order (FIFO tie-break by sequence
// number), which makes every simulation bit-for-bit reproducible for a given
// seed — the property all the paper-reproduction benches rely on.

#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/clock.h"

namespace atropos {

class Executor {
 public:
  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  TimeMicros now() const { return clock_.NowMicros(); }
  Clock* clock() { return &clock_; }

  // Resumes the coroutine at absolute virtual time `t` (clamped to now).
  void ResumeAt(TimeMicros t, std::coroutine_handle<> h) {
    events_.push(Event{ClampToNow(t), next_seq_++, h, {}});
  }
  void ResumeAfter(TimeMicros delay, std::coroutine_handle<> h) { ResumeAt(now() + delay, h); }

  // Runs an arbitrary callback at absolute virtual time `t`.
  void CallAt(TimeMicros t, std::function<void()> fn) {
    events_.push(Event{ClampToNow(t), next_seq_++, {}, std::move(fn)});
  }
  void CallAfter(TimeMicros delay, std::function<void()> fn) {
    CallAt(now() + delay, std::move(fn));
  }

  // Processes events in time order until the heap is empty or virtual time
  // would pass `until`. Returns the number of events processed. Events exactly
  // at `until` are processed.
  uint64_t Run(TimeMicros until = std::numeric_limits<TimeMicros>::max());

  bool has_pending() const { return !events_.empty(); }
  size_t pending_count() const { return events_.size(); }

  // Live coroutine-process accounting (maintained by Coro's promise); used by
  // tests to assert that scenarios fully drain.
  void OnProcStarted() { live_procs_++; }
  void OnProcFinished() { live_procs_--; }
  int64_t live_procs() const { return live_procs_; }

 private:
  struct Event {
    TimeMicros time;
    uint64_t seq;
    std::coroutine_handle<> handle;   // used when valid
    std::function<void()> callback;   // used otherwise

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  TimeMicros ClampToNow(TimeMicros t) const { return t < now() ? now() : t; }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  ManualClock clock_;
  uint64_t next_seq_ = 0;
  int64_t live_procs_ = 0;
};

}  // namespace atropos

#endif  // SRC_SIM_EXECUTOR_H_
