// Intrusive wait-list plumbing shared by all blocking simulation primitives.
//
// A coroutine that blocks on a primitive embeds a WaitNode in its awaiter
// (which lives in the coroutine frame, so the storage is stable across
// suspension). The primitive links the node into its wait list; a CancelToken
// can later ask the owning primitive to abort the wait, which is how Atropos
// cancellation interrupts tasks blocked on locks and queues.

#ifndef SRC_SIM_WAIT_H_
#define SRC_SIM_WAIT_H_

#include <coroutine>
#include <cstdint>

#include "src/common/status.h"

namespace atropos {

class CancelToken;
class WaitList;
class WaitNode;

// A primitive that parks waiters. CancelWaiter must unlink the node, complete
// it with kCancelled, and re-run any grant logic that the removal enables
// (e.g. a semaphore whose blocked head was cancelled).
class WaiterOwner {
 public:
  virtual ~WaiterOwner() = default;
  virtual void CancelWaiter(WaitNode& node) = 0;

 protected:
  WaiterOwner() = default;
};

// One parked coroutine. Lives inside the awaiter object in the coroutine
// frame; never heap-allocated by the primitives.
class WaitNode {
 public:
  std::coroutine_handle<> handle;
  Status result;
  WaiterOwner* owner = nullptr;
  CancelToken* token = nullptr;
  int tag = 0;          // primitive-specific role (e.g. reader/writer)
  uint64_t amount = 0;  // primitive-specific quantity (e.g. semaphore units)
  void* slot = nullptr;  // primitive-specific value transfer (e.g. queue item)

  bool linked() const { return list_ != nullptr; }

 private:
  friend class WaitList;
  WaitList* list_ = nullptr;
  WaitNode* prev_ = nullptr;
  WaitNode* next_ = nullptr;
};

// Intrusive FIFO list of WaitNodes.
class WaitList {
 public:
  WaitList() = default;
  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  bool empty() const { return head_ == nullptr; }
  WaitNode* front() const { return head_; }

  void PushBack(WaitNode* node) {
    node->list_ = this;
    node->prev_ = tail_;
    node->next_ = nullptr;
    if (tail_ != nullptr) {
      tail_->next_ = node;
    } else {
      head_ = node;
    }
    tail_ = node;
    size_++;
  }

  WaitNode* PopFront() {
    WaitNode* node = head_;
    if (node != nullptr) {
      Remove(node);
    }
    return node;
  }

  void Remove(WaitNode* node) {
    if (node->list_ != this) {
      return;
    }
    if (node->prev_ != nullptr) {
      node->prev_->next_ = node->next_;
    } else {
      head_ = node->next_;
    }
    if (node->next_ != nullptr) {
      node->next_->prev_ = node->prev_;
    } else {
      tail_ = node->prev_;
    }
    node->list_ = nullptr;
    node->prev_ = nullptr;
    node->next_ = nullptr;
    size_--;
  }

  size_t size() const { return size_; }

  // Iteration (used by rwlock grant logic).
  WaitNode* Next(WaitNode* node) const { return node->next_; }

 private:
  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
  size_t size_ = 0;
};

}  // namespace atropos

#endif  // SRC_SIM_WAIT_H_
