// Bounded FIFO queue with blocking push/pop and direct handoff.
//
// Models application-managed task queues (the paper's QUEUE resource class):
// thread-pool work queues, InnoDB admission, Solr's search queue. Values are
// handed directly from a completing push to the longest-waiting pop so that
// FIFO order is exact even under cancellation.

#ifndef SRC_SIM_QUEUE_H_
#define SRC_SIM_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/executor.h"
#include "src/sim/wait.h"

namespace atropos {

template <typename T>
class BoundedQueue final : public WaiterOwner {
 public:
  BoundedQueue(Executor& executor, size_t capacity) : executor_(executor), capacity_(capacity) {}

  class Pusher {
   public:
    Pusher(BoundedQueue& q, T value, CancelToken* token)
        : queue_(q), value_(std::move(value)), token_(token) {}

    bool await_ready() {
      if (token_ != nullptr && token_->cancelled()) {
        node_.result = Status::Cancelled("push aborted before suspend");
        return true;
      }
      if (queue_.TryDeliverOrStash(value_)) {
        node_.result = Status::Ok();
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      node_.handle = h;
      node_.owner = &queue_;
      node_.token = token_;
      node_.tag = kPushTag;
      node_.slot = &value_;
      queue_.pushers_.PushBack(&node_);
      if (token_ != nullptr) {
        token_->Register(&node_);
      }
    }

    Status await_resume() { return node_.result; }

   private:
    BoundedQueue& queue_;
    T value_;
    CancelToken* token_;
    WaitNode node_;
  };

  class Popper {
   public:
    Popper(BoundedQueue& q, CancelToken* token) : queue_(q), token_(token) {}

    bool await_ready() {
      if (token_ != nullptr && token_->cancelled()) {
        status_ = Status::Cancelled("pop aborted before suspend");
        return true;
      }
      if (!queue_.poppers_.empty()) {
        return false;  // FIFO: earlier poppers go first
      }
      if (!queue_.items_.empty()) {
        value_.emplace(std::move(queue_.items_.front()));
        queue_.items_.pop_front();
        status_ = Status::Ok();
        queue_.DrainPushers();
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      node_.handle = h;
      node_.owner = &queue_;
      node_.token = token_;
      node_.tag = kPopTag;
      node_.slot = &value_;
      queue_.poppers_.PushBack(&node_);
      if (token_ != nullptr) {
        token_->Register(&node_);
      }
    }

    StatusOr<T> await_resume() {
      Status s = node_.handle ? node_.result : status_;
      if (!s.ok()) {
        return s;
      }
      return std::move(*value_);
    }

   private:
    BoundedQueue& queue_;
    CancelToken* token_;
    Status status_;
    std::optional<T> value_;
    WaitNode node_;
  };

  // co_await queue.Push(v) -> Status; blocks while full.
  Pusher Push(T value, CancelToken* token = nullptr) {
    return Pusher(*this, std::move(value), token);
  }
  // co_await queue.Pop() -> StatusOr<T>; blocks while empty.
  Popper Pop(CancelToken* token = nullptr) { return Popper(*this, token); }

  // Non-blocking push; returns false if the queue is full.
  bool TryPush(T value) {
    if (TryDeliverOrStash(value)) {
      return true;
    }
    return false;
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  size_t waiting_pushers() const { return pushers_.size(); }
  size_t waiting_poppers() const { return poppers_.size(); }

  void CancelWaiter(WaitNode& node) override {
    if (node.tag == kPushTag) {
      pushers_.Remove(&node);
    } else {
      poppers_.Remove(&node);
    }
    Finish(&node, Status::Cancelled("queue wait cancelled"));
    // A cancelled popper frees nothing, but a cancelled pusher at the head of
    // a full queue changes nothing either; no regrant needed beyond drains
    // already driven by pops.
  }

 private:
  static constexpr int kPushTag = 1;
  static constexpr int kPopTag = 2;

  // Either hands the value to a waiting popper or stashes it if there is
  // room. Returns false when the push must block.
  bool TryDeliverOrStash(T& value) {
    if (!poppers_.empty()) {
      WaitNode* popper = poppers_.PopFront();
      auto* slot = static_cast<std::optional<T>*>(popper->slot);
      slot->emplace(std::move(value));
      Finish(popper, Status::Ok());
      return true;
    }
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
      return true;
    }
    return false;
  }

  // After a pop frees space, admit blocked pushers in order.
  void DrainPushers() {
    while (!pushers_.empty() && items_.size() < capacity_) {
      WaitNode* pusher = pushers_.PopFront();
      auto* slot = static_cast<T*>(pusher->slot);
      items_.push_back(std::move(*slot));
      Finish(pusher, Status::Ok());
    }
  }

  void Finish(WaitNode* node, Status status) {
    if (node->token != nullptr) {
      node->token->Unregister(node);
      node->token = nullptr;
    }
    node->result = std::move(status);
    executor_.ResumeAfter(0, node->handle);
  }

  Executor& executor_;
  size_t capacity_;
  std::deque<T> items_;
  WaitList pushers_;
  WaitList poppers_;
};

}  // namespace atropos

#endif  // SRC_SIM_QUEUE_H_
