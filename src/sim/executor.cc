#include "src/sim/executor.h"

#include <utility>

namespace atropos {

uint64_t Executor::Run(TimeMicros until) {
  uint64_t processed = 0;
  while (!events_.empty()) {
    const Event& top = events_.top();
    if (top.time > until) {
      // Leave future events queued; advance the clock to the horizon so that
      // callers observing now() see the full elapsed interval.
      if (until != std::numeric_limits<TimeMicros>::max() && until > clock_.NowMicros()) {
        clock_.SetTime(until);
      }
      return processed;
    }
    Event ev = top;
    events_.pop();
    clock_.SetTime(ev.time);
    processed++;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.callback) {
      ev.callback();
    }
  }
  if (until != std::numeric_limits<TimeMicros>::max() && until > clock_.NowMicros()) {
    clock_.SetTime(until);
  }
  return processed;
}

}  // namespace atropos
