// A token-interruptible timed sleep.
//
// Delay (coro.h) is the right primitive for modelled work: once started, the
// cost is paid. Background maintenance loops need something different — they
// park for long intervals and must observe shutdown *immediately*, because
// their owner is about to be destroyed. InterruptibleSleep registers with a
// CancelToken and, unlike the primitives in sync.h, resumes the sleeper
// INLINE from Cancel(): by the time CancelToken::Cancel() returns, a loop
// parked in an InterruptibleSleep has already run to its next suspension
// point (typically completion). That synchronous quiesce is what makes
// `Shutdown(); ~Owner();` safe without draining the event heap in between.
//
// Inline resume is safe here precisely because a sleep, unlike a mutex or
// queue, has no shared grant state to re-run; the only loose end is the timer
// event already sitting in the executor heap. The wait node is therefore
// heap-allocated and the timer callback holds only a weak reference: if the
// sleeper was cancelled (and its frame possibly destroyed), the timer finds
// an expired pointer and does nothing.
//
// CAUTION: bind the awaited Status to a named local (`Status s = co_await
// InterruptibleSleep(...); if (!s.ok()) ...`). g++ 12 miscompiles the
// `(co_await ...).ok()` form inside `while (!token->cancelled())` loops —
// the coroutine frame's resume pointer is never stored and the timer fires
// into garbage.

#ifndef SRC_SIM_SLEEP_H_
#define SRC_SIM_SLEEP_H_

#include <coroutine>
#include <memory>
#include <utility>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sim/cancel.h"
#include "src/sim/executor.h"
#include "src/sim/wait.h"

namespace atropos {

class InterruptibleSleep final : public WaiterOwner {
 public:
  InterruptibleSleep(Executor& executor, TimeMicros delay, CancelToken* token)
      : executor_(executor), delay_(delay), token_(token) {}

  bool await_ready() {
    if (token_ != nullptr && token_->cancelled()) {
      result_ = Status::Cancelled("sleep aborted before suspend");
      return true;
    }
    return false;
  }

  void await_suspend(std::coroutine_handle<> h) {
    node_ = std::make_shared<WaitNode>();
    node_->handle = h;
    node_->owner = this;
    node_->token = token_;
    if (token_ != nullptr) {
      token_->Register(node_.get());
    }
    std::weak_ptr<WaitNode> weak = node_;
    executor_.CallAfter(delay_, [weak] {
      std::shared_ptr<WaitNode> node = weak.lock();
      if (node == nullptr) {
        return;  // sleeper was cancelled; its frame may be gone
      }
      if (node->token != nullptr) {
        node->token->Unregister(node.get());
        node->token = nullptr;
      }
      node->result = Status::Ok();
      node->handle.resume();
    });
  }

  Status await_resume() {
    if (node_ != nullptr) {
      result_ = node_->result;
      node_.reset();
    }
    return result_;
  }

  void CancelWaiter(WaitNode& node) override {
    node.result = Status::Cancelled("sleep interrupted");
    // Inline on purpose — see file comment. `node` (and this awaiter) may be
    // destroyed when resume() returns; touch nothing afterwards.
    node.handle.resume();
  }

 private:
  Executor& executor_;
  TimeMicros delay_;
  CancelToken* token_;
  std::shared_ptr<WaitNode> node_;
  Status result_ = Status::Ok();
};

}  // namespace atropos

#endif  // SRC_SIM_SLEEP_H_
