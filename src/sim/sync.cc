#include "src/sim/sync.h"

namespace atropos {

namespace {
// Completes a parked node outside of its wait list: detaches it from its
// token, records the status, and schedules the resume at the current virtual
// time (never inline, to avoid re-entrancy into primitive state).
void FinishNode(Executor& executor, WaitNode* node, Status status) {
  if (node->token != nullptr) {
    node->token->Unregister(node);
    node->token = nullptr;
  }
  node->result = std::move(status);
  executor.ResumeAfter(0, node->handle);
}
}  // namespace

// ---------------------------------------------------------------------------
// SimEvent

bool SimEvent::Waiter::await_ready() {
  if (token_ != nullptr && token_->cancelled()) {
    node_.result = Status::Cancelled("wait aborted before suspend");
    return true;
  }
  if (event_.set_) {
    node_.result = Status::Ok();
    return true;
  }
  return false;
}

void SimEvent::Waiter::await_suspend(std::coroutine_handle<> h) {
  node_.handle = h;
  node_.owner = &event_;
  node_.token = token_;
  event_.waiters_.PushBack(&node_);
  if (token_ != nullptr) {
    token_->Register(&node_);
  }
}

void SimEvent::Set() {
  if (set_) {
    return;
  }
  set_ = true;
  while (WaitNode* node = waiters_.PopFront()) {
    CompleteNode(node, Status::Ok());
  }
}

void SimEvent::CancelWaiter(WaitNode& node) {
  waiters_.Remove(&node);
  CompleteNode(&node, Status::Cancelled("event wait cancelled"));
}

void SimEvent::CompleteNode(WaitNode* node, Status status) {
  FinishNode(executor_, node, std::move(status));
}

// ---------------------------------------------------------------------------
// SimMutex

bool SimMutex::Acquirer::await_ready() {
  if (token_ != nullptr && token_->cancelled()) {
    node_.result = Status::Cancelled("mutex acquire aborted before suspend");
    return true;
  }
  if (!mutex_.held_ && mutex_.waiters_.empty()) {
    mutex_.held_ = true;
    node_.result = Status::Ok();
    return true;
  }
  return false;
}

void SimMutex::Acquirer::await_suspend(std::coroutine_handle<> h) {
  node_.handle = h;
  node_.owner = &mutex_;
  node_.token = token_;
  mutex_.waiters_.PushBack(&node_);
  if (token_ != nullptr) {
    token_->Register(&node_);
  }
}

void SimMutex::Release() {
  WaitNode* next = waiters_.PopFront();
  if (next == nullptr) {
    held_ = false;
    return;
  }
  // Hand the lock directly to the next waiter (still held).
  CompleteNode(next, Status::Ok());
}

void SimMutex::CancelWaiter(WaitNode& node) {
  waiters_.Remove(&node);
  CompleteNode(&node, Status::Cancelled("mutex wait cancelled"));
}

void SimMutex::CompleteNode(WaitNode* node, Status status) {
  FinishNode(executor_, node, std::move(status));
}

// ---------------------------------------------------------------------------
// SimSemaphore

bool SimSemaphore::Acquirer::await_ready() {
  if (token_ != nullptr && token_->cancelled()) {
    node_.result = Status::Cancelled("semaphore acquire aborted before suspend");
    return true;
  }
  if (sem_.waiters_.empty() && sem_.available_ >= units_) {
    sem_.available_ -= units_;
    node_.result = Status::Ok();
    return true;
  }
  return false;
}

void SimSemaphore::Acquirer::await_suspend(std::coroutine_handle<> h) {
  node_.handle = h;
  node_.owner = &sem_;
  node_.token = token_;
  node_.amount = units_;
  sem_.waiters_.PushBack(&node_);
  if (token_ != nullptr) {
    token_->Register(&node_);
  }
}

bool SimSemaphore::TryAcquire(uint64_t units) {
  if (waiters_.empty() && available_ >= units) {
    available_ -= units;
    return true;
  }
  return false;
}

void SimSemaphore::Release(uint64_t units) {
  available_ += units;
  GrantWaiters();
}

void SimSemaphore::GrantWaiters() {
  while (!waiters_.empty() && waiters_.front()->amount <= available_) {
    WaitNode* node = waiters_.PopFront();
    available_ -= node->amount;
    CompleteNode(node, Status::Ok());
  }
}

void SimSemaphore::CancelWaiter(WaitNode& node) {
  // The unlink is eager in both modes — the node lives in the cancelled
  // coroutine's frame (see header). Only the grant-chain repair is modal.
  waiters_.Remove(&node);
  CompleteNode(&node, Status::Cancelled("semaphore wait cancelled"));
  if (cancel_mode_ == CancelMode::kSmart) {
    // The removed head may have been blocking smaller requests behind it.
    GrantWaiters();
  }
}

void SimSemaphore::CompleteNode(WaitNode* node, Status status) {
  FinishNode(executor_, node, std::move(status));
}

// ---------------------------------------------------------------------------
// SimRwLock

bool SimRwLock::Acquirer::await_ready() {
  if (token_ != nullptr && token_->cancelled()) {
    node_.result = Status::Cancelled("rwlock acquire aborted before suspend");
    return true;
  }
  if (!lock_.waiters_.empty()) {
    return false;  // strict FIFO: never jump the queue
  }
  if (mode_ == kReader) {
    if (!lock_.writer_held_) {
      lock_.active_readers_++;
      node_.result = Status::Ok();
      return true;
    }
  } else {
    if (!lock_.writer_held_ && lock_.active_readers_ == 0) {
      lock_.writer_held_ = true;
      node_.result = Status::Ok();
      return true;
    }
  }
  return false;
}

void SimRwLock::Acquirer::await_suspend(std::coroutine_handle<> h) {
  node_.handle = h;
  node_.owner = &lock_;
  node_.token = token_;
  node_.tag = mode_;
  lock_.waiters_.PushBack(&node_);
  if (token_ != nullptr) {
    token_->Register(&node_);
  }
}

void SimRwLock::ReleaseShared() {
  active_readers_--;
  GrantWaiters();
}

void SimRwLock::ReleaseExclusive() {
  writer_held_ = false;
  GrantWaiters();
}

void SimRwLock::GrantWaiters() {
  // Grant strictly from the head: a batch of consecutive readers, or a single
  // writer once the lock is free.
  while (!waiters_.empty()) {
    WaitNode* front = waiters_.front();
    if (front->tag == kReader) {
      if (writer_held_) {
        return;
      }
      waiters_.Remove(front);
      active_readers_++;
      CompleteNode(front, Status::Ok());
    } else {
      if (writer_held_ || active_readers_ > 0) {
        return;
      }
      waiters_.Remove(front);
      writer_held_ = true;
      CompleteNode(front, Status::Ok());
      return;
    }
  }
}

void SimRwLock::CancelWaiter(WaitNode& node) {
  // Eager unlink in both modes (frame-resident node); modal grant pass.
  waiters_.Remove(&node);
  CompleteNode(&node, Status::Cancelled("rwlock wait cancelled"));
  if (cancel_mode_ == CancelMode::kSmart) {
    // Removing a queued writer can unblock the readers queued behind it.
    GrantWaiters();
  }
}

void SimRwLock::CompleteNode(WaitNode* node, Status status) {
  FinishNode(executor_, node, std::move(status));
}

}  // namespace atropos
