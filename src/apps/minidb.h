// MiniDb: the MySQL/PostgreSQL analogue (cases c1–c8).
//
// A single-node database server assembled from the db substrate: table
// locks with FTWRL-style backup, an InnoDB-style concurrency-ticket queue, a
// buffer pool, an undo log with background purge, MVCC version chains with a
// pruner, a group-commit WAL with a background flusher, and a disk shared
// with a vacuum task. Which layers a request passes through is configurable
// per scenario, mirroring how the paper reproduces each overload case in
// isolation.

#ifndef SRC_APPS_MINIDB_H_
#define SRC_APPS_MINIDB_H_

#include <memory>
#include <vector>

#include "src/apps/app.h"
#include "src/atropos/instrument.h"
#include "src/common/rng.h"
#include "src/db/buffer_pool.h"
#include "src/db/lock_manager.h"
#include "src/db/mvcc.h"
#include "src/db/undo_log.h"
#include "src/db/wal.h"
#include "src/sim/cpu.h"
#include "src/sim/task.h"

namespace atropos {

// Request types. `arg` selects the table for table-oriented requests and the
// work size (rows/pages/records/bytes scale factor) for heavy ones. For
// kDbDumpQuery, arg's low byte selects the table and the remaining bits (if
// nonzero) override the page count: arg = (pages << 8) | table.
enum MiniDbRequestType : int {
  kDbPointSelect = 0,
  kDbRowUpdate = 1,
  kDbDumpQuery = 2,        // c5: scans pages >> pool capacity
  kDbTableScan = 3,        // c1: long scan holding an S table lock
  kDbBackup = 4,           // c1: FTWRL-style all-table X lock
  kDbSlowQuery = 5,        // c2: holds an InnoDB ticket for a long time
  kDbSelectForUpdate = 6,  // c4: holds an X table lock for a long time
  kDbInsert = 7,           // c4 victim: brief S table lock
  kDbMvccRead = 8,         // c6 victim
  kDbMvccBulkWrite = 9,    // c6 culprit
  kDbWalInsert = 10,       // c7 victim
  kDbWalBulkInsert = 11,   // c7 culprit
  kDbIoQuery = 12,         // c8 victim: small reads on the shared disk
  kDbVacuum = 13,          // c8 culprit: large sequential disk writes
  kDbUndoWrite = 14,       // c3 victim: write paying the history penalty
  kDbOldSnapshotRead = 15, // c3 culprit: pins an old snapshot, blocking purge
  kDbAlterTable = 16,      // rebuilds a table: X table lock + buffer pool hog
};

struct MiniDbOptions {
  // Which layers request handlers exercise.
  bool use_tickets = false;
  bool use_table_locks = false;
  bool use_buffer_pool = false;
  bool use_undo = false;
  bool use_mvcc = false;
  bool use_wal = false;
  bool use_io = false;

  int num_tables = 5;
  uint64_t pages_per_table = 4096;    // "2 GB data" vs pool capacity below
  uint64_t hot_pages_per_table = 256; // working set of point queries
  uint64_t innodb_tickets = 8;

  BufferPoolOptions pool;             // capacity default: "512 MB" analog
  UndoLogOptions undo;
  MvccOptions mvcc;
  WalOptions wal;
  double io_bytes_per_second = 200e6;

  TimeMicros point_select_cost = 30;
  TimeMicros row_update_cost = 50;
  uint64_t point_pages = 4;           // pages touched by a point query
  uint64_t scan_rows = 2'000'000;     // c1 scan length
  TimeMicros scan_cost_per_kilo_row = 400;
  TimeMicros backup_work_cost = 100'000;  // work after acquiring all locks
  TimeMicros slow_query_cost = 5'000'000; // c2 in-ticket execution
  TimeMicros sfu_hold_cost = 5'000'000;   // c4 lock hold
  uint64_t io_query_bytes = 64 * 1024;
  uint64_t vacuum_bytes = 512 * 1024 * 1024;  // c8 total vacuum I/O
  uint64_t vacuum_chunk_bytes = 8 * 1024 * 1024;

  // Uniform extra service time per request (used by the overhead bench to
  // model tracing-API cost).
  TimeMicros extra_request_cost = 0;

  // Cancellation mode for the convoy-prone primitives (table locks, tickets,
  // buffer-pool admission): kSmart repairs the grant chain at cancellation
  // time, kSimple defers it to the next release (src/sync/cancel_mode.h).
  CancelMode cancel_mode = CancelMode::kSmart;

  uint64_t seed = 1;
};

class MiniDb final : public App {
 public:
  MiniDb(Executor& executor, OverloadController* controller, MiniDbOptions options);
  ~MiniDb() override;

  std::string_view name() const override { return "minidb"; }
  std::string_view RequestTypeName(int type) const override;
  void Start(const AppRequest& req, CompletionFn done) override;
  void Shutdown() override;
  // DARC: reserving tickets for short requests caps slow-query concurrency.
  void SetTypeReservation(int request_type, int workers) override;

  // Introspection for tests.
  BufferPool* buffer_pool() { return pool_.get(); }
  UndoLog* undo_log() { return undo_.get(); }
  MvccTable* mvcc() { return mvcc_.get(); }
  WriteAheadLog* wal() { return wal_.get(); }
  TableLockManager* lock_manager() { return locks_.get(); }
  const MiniDbOptions& options() const { return options_; }

 private:
  Coro Serve(AppRequest req, CompletionFn done);
  Task<Status> Dispatch(const AppRequest& req, CancelToken* token);

  Task<Status> PointSelect(const AppRequest& req, CancelToken* token);
  Task<Status> RowUpdate(const AppRequest& req, CancelToken* token);
  Task<Status> DumpQuery(const AppRequest& req, CancelToken* token);
  Task<Status> TableScan(const AppRequest& req, CancelToken* token);
  Task<Status> Backup(const AppRequest& req, CancelToken* token);
  Task<Status> SlowQuery(const AppRequest& req, CancelToken* token);
  Task<Status> SelectForUpdate(const AppRequest& req, CancelToken* token);
  Task<Status> Insert(const AppRequest& req, CancelToken* token);
  Task<Status> MvccRead(const AppRequest& req, CancelToken* token);
  Task<Status> MvccBulkWrite(const AppRequest& req, CancelToken* token);
  Task<Status> WalInsert(const AppRequest& req, CancelToken* token);
  Task<Status> WalBulkInsert(const AppRequest& req, CancelToken* token);
  Task<Status> IoQuery(const AppRequest& req, CancelToken* token);
  Task<Status> Vacuum(const AppRequest& req, CancelToken* token);
  Task<Status> UndoWrite(const AppRequest& req, CancelToken* token);
  Task<Status> OldSnapshotRead(const AppRequest& req, CancelToken* token);
  Task<Status> AlterTable(const AppRequest& req, CancelToken* token);

  // Page id of `page` within `table`'s contiguous page range.
  uint64_t PageId(int table, uint64_t page) const;
  int TableOf(const AppRequest& req) const;

  MiniDbOptions options_;
  Rng rng_;

  // Resources (registered with the controller).
  ResourceId table_lock_resource_ = kInvalidResourceId;
  ResourceId ticket_resource_ = kInvalidResourceId;
  ResourceId pool_resource_ = kInvalidResourceId;
  ResourceId undo_resource_ = kInvalidResourceId;
  ResourceId mvcc_resource_ = kInvalidResourceId;
  ResourceId wal_resource_ = kInvalidResourceId;
  ResourceId io_resource_ = kInvalidResourceId;

  std::unique_ptr<TableLockManager> locks_;
  std::unique_ptr<InstrumentedSemaphore> tickets_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<UndoLog> undo_;
  std::unique_ptr<MvccTable> mvcc_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<IoDevice> io_;

  // DARC-style cap on heavy-request concurrency.
  std::unique_ptr<AdjustableLimiter> heavy_limiter_;

  // Background task control.
  std::vector<std::unique_ptr<CancelToken>> background_stops_;
};

}  // namespace atropos

#endif  // SRC_APPS_MINIDB_H_
