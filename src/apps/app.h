// Common application framework for the four simulated servers.
//
// An App serves typed requests as detached simulation coroutines, exposes the
// application's safe cancellation initiator (§2.4/§3.6: set a flag that the
// handler observes at checkpoints and that aborts its blocking waits), and
// implements the ControlSurface actions it supports (cancel, throttle, worker
// reservation, client shares).

#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <array>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/atropos/controller.h"
#include "src/atropos/instrument.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/sim/cancel.h"
#include "src/sim/coro.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"

namespace atropos {

// Keys at or above this base identify application background tasks (backup
// thread, purge, WAL flusher, vacuum, ...); frontend request keys stay below.
inline constexpr uint64_t kBackgroundKeyBase = 1ull << 40;

struct AppRequest {
  uint64_t key = 0;          // unique task key (also the Atropos task key)
  int type = 0;              // app-specific request type enum
  int client_class = 0;      // tenant / client grouping (PARTIES)
  uint64_t arg = 0;          // type-specific parameter (table id, span, ...)
  bool non_cancellable = false;  // re-executed request (§4 fairness)
};

enum class OutcomeKind {
  kCompleted = 0,
  kCancelled = 1,  // culprit cancellation (may be re-executed)
  kDropped = 2,    // victim drop (returned to the client as an error)
  kRejected = 3,   // admission rejection (backlog full)
};

using CompletionFn = std::function<void(const AppRequest&, OutcomeKind)>;

class App : public ControlSurface {
 public:
  ~App() override = default;

  virtual std::string_view name() const = 0;

  // Starts serving `req` as a detached coroutine; `done` fires exactly once.
  virtual void Start(const AppRequest& req, CompletionFn done) = 0;

  // The application's cancellation initiator (sql_kill / KILL QUERY analog):
  // marks the task and aborts its cancellable waits. Tasks registered
  // non-cancellable (re-executed work, unsafe background tasks) ignore it.
  virtual void Cancel(uint64_t key);

  // Human-readable name for an app-specific request type enum value, e.g.
  // "backup" for MiniDb's kDbBackup. Used by the trace exporters.
  virtual std::string_view RequestTypeName(int type) const { return "request"; }

  // Attach a metrics registry (non-owning). FinishTask then maintains
  // "<app>.requests.<type>" and "<app>.outcome.<kind>" counters.
  void SetMetrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    type_counters_.clear();
    outcome_counters_.fill(nullptr);
  }

  // Stops background tasks so the simulation drains.
  virtual void Shutdown() = 0;

  void CancelTask(uint64_t key, CancelReason reason) override;
  void ThrottleTask(uint64_t key, double factor) override;
  // PARTIES: resizes a client class's concurrency share.
  void SetClientShare(int client_class, double share) override;

 protected:
  // Book-keeping for an in-flight request or background task.
  struct LiveTask {
    std::unique_ptr<CancelToken> token;
    CancelReason cancel_reason = CancelReason::kCulprit;
    bool cancelled = false;
    double throttle = 1.0;
  };

  explicit App(Executor& executor, OverloadController* controller)
      : executor_(executor), controller_(controller) {}

  // Creates the live entry + cancel token for `key`; pre-cancelled entries
  // are not created for non-cancellable requests — they still get a token
  // but Cancel() on them is a no-op (the app-level safety contract).
  CancelToken* BeginTask(uint64_t key, bool cancellable = true);

  // Maps the handler's final status to an OutcomeKind using the recorded
  // cancellation reason, erases the live entry, and invokes `done`.
  void FinishTask(const AppRequest& req, const CompletionFn& done, const Status& status);

  // Throttle-aware delay scaling (pBox penalties).
  TimeMicros Scaled(uint64_t key, TimeMicros t) const;

  CancelToken* TokenOf(uint64_t key);
  bool IsLive(uint64_t key) const { return live_.count(key) != 0; }
  size_t live_count() const { return live_.size(); }

  // Client-class admission gates (PARTIES shares). Gates start effectively
  // unbounded; SetClientShare resizes them against `parties_capacity` (the
  // app's nominal concurrency).
  void InitClientGates(int num_classes, int64_t parties_capacity);
  Task<Status> GateEnter(const AppRequest& req, CancelToken* token);
  void GateExit(const AppRequest& req);

  Executor& executor_;
  OverloadController* controller_;
  MetricsRegistry* metrics_ = nullptr;
  // Counter pointers are stable for the registry's lifetime, so FinishTask
  // resolves each name once and increments through the cache afterwards.
  std::unordered_map<int, Counter*> type_counters_;
  std::array<Counter*, 4> outcome_counters_{};
  std::unordered_map<uint64_t, LiveTask> live_;
  std::unordered_map<uint64_t, bool> cancellable_;
  std::vector<std::unique_ptr<AdjustableLimiter>> class_gates_;
  int64_t gate_slots_ = 0;
};

}  // namespace atropos

#endif  // SRC_APPS_APP_H_
