#include "src/apps/minisearch.h"

#include <algorithm>

#include "src/sim/sleep.h"

namespace atropos {

namespace {
constexpr uint64_t kCommitterKey = kBackgroundKeyBase + 10;
}  // namespace

MiniSearch::MiniSearch(Executor& executor, OverloadController* controller,
                       MiniSearchOptions options)
    : App(executor, controller), options_(options), rng_(options.seed) {
  if (options_.use_cache) {
    cache_resource_ = controller_->RegisterResource("query_cache", ResourceClass::kMemory);
    cache_ = std::make_unique<BufferPool>(executor_, options_.cache, controller_,
                                          cache_resource_);
  }
  if (options_.use_heap) {
    heap_resource_ = controller_->RegisterResource("heap", ResourceClass::kMemory);
    heap_ = std::make_unique<GcHeap>(executor_, options_.heap, controller_, heap_resource_);
  }
  if (options_.use_cpu) {
    cpu_resource_ = controller_->RegisterResource("cpu", ResourceClass::kCpu);
    cpu_ = std::make_unique<CpuPool>(executor_, options_.cpu_cores);
  }
  if (options_.use_doc_locks) {
    doc_lock_resource_ = controller_->RegisterResource("document_locks", ResourceClass::kLock);
    doc_locks_.reserve(static_cast<size_t>(options_.doc_lock_stripes));
    for (int i = 0; i < options_.doc_lock_stripes; i++) {
      doc_locks_.push_back(std::make_unique<InstrumentedRwLock>(executor_, controller_,
                                                                doc_lock_resource_));
    }
  }
  if (options_.use_index_lock) {
    index_lock_resource_ = controller_->RegisterResource("index_lock", ResourceClass::kLock);
    index_lock_ =
        std::make_unique<InstrumentedRwLock>(executor_, controller_, index_lock_resource_);
    controller_->OnTaskRegistered(kCommitterKey, /*background=*/true, /*cancellable=*/false);
    commit_stop_ = std::make_unique<CancelToken>(executor_);
    CommitLoop();
  }
  if (options_.use_queue) {
    queue_resource_ = controller_->RegisterResource("search_queue", ResourceClass::kQueue);
    search_threads_ = std::make_unique<InstrumentedSemaphore>(
        executor_, options_.search_threads, controller_, queue_resource_);
  }
  InitClientGates(/*num_classes=*/2, /*parties_capacity=*/64);
  heavy_limiter_ = std::make_unique<AdjustableLimiter>(executor_, 1024);
}

void MiniSearch::SetTypeReservation(int request_type, int workers) {
  auto threads = static_cast<int64_t>(options_.search_threads);
  int64_t cap = threads - workers;
  heavy_limiter_->SetLimit(cap < 1 ? 1 : cap);
}

MiniSearch::~MiniSearch() { Shutdown(); }

void MiniSearch::Shutdown() {
  if (commit_stop_ != nullptr) {
    commit_stop_->Cancel();
  }
}

InstrumentedRwLock& MiniSearch::DocLock(uint64_t doc) {
  return *doc_locks_[doc % doc_locks_.size()];
}

std::string_view MiniSearch::RequestTypeName(int type) const {
  switch (type) {
    case kSearchQuery:
      return "query";
    case kSearchLargeQuery:
      return "large_query";
    case kSearchAggregation:
      return "aggregation";
    case kSearchLongQuery:
      return "long_query";
    case kSearchDocUpdate:
      return "doc_update";
    case kSearchDocRead:
      return "doc_read";
    case kSearchBooleanQuery:
      return "boolean_query";
    case kSearchCommit:
      return "commit";
    case kSearchRangeQuery:
      return "range_query";
    default:
      return "request";
  }
}

void MiniSearch::Start(const AppRequest& req, CompletionFn done) { Serve(req, std::move(done)); }

Coro MiniSearch::Serve(AppRequest req, CompletionFn done) {
  co_await BindExecutor{executor_};
  CancelToken* token = BeginTask(req.key, !req.non_cancellable);
  if (options_.extra_request_cost > 0) {
    co_await Delay{executor_, options_.extra_request_cost};
  }
  Status status = co_await GateEnter(req, token);
  if (status.ok()) {
    status = co_await Dispatch(req, token);
    GateExit(req);
  }
  FinishTask(req, done, status);
}

// Background Lucene-style commit: brief exclusive index lock at a fixed
// cadence. Behind a long boolean query's read lock, the queued commit forms
// the convoy of case c14.
Coro MiniSearch::CommitLoop() {
  co_await BindExecutor{executor_};
  // Interruptible sleeps: Shutdown() must quiesce the committer synchronously
  // because the app (and commit_stop_ with it) is destroyed right after. Once
  // a sleep reports kCancelled, no member may be touched except to release a
  // lock we still hold — at that point Cancel() has not yet returned, so the
  // app is still alive.
  while (!commit_stop_->cancelled()) {
    // Named local on purpose: g++ 12 miscompiles `(co_await ...).ok()` in a
    // condition inside this loop shape (resume pointer never stored).
    Status slept = co_await InterruptibleSleep(executor_, options_.commit_interval, commit_stop_.get());
    if (!slept.ok()) {
      break;
    }
    Status s = co_await index_lock_->AcquireExclusive(kCommitterKey, commit_stop_.get());
    if (!s.ok()) {
      break;
    }
    Status held = co_await InterruptibleSleep(executor_, options_.commit_hold, commit_stop_.get());
    index_lock_->ReleaseExclusive(kCommitterKey);
    if (!held.ok()) {
      break;
    }
  }
}

Task<Status> MiniSearch::Dispatch(const AppRequest& req, CancelToken* token) {
  switch (req.type) {
    case kSearchLargeQuery:
      return LargeQuery(req, token);
    case kSearchAggregation:
      return Aggregation(req, token);
    case kSearchLongQuery:
      return LongQuery(req, token);
    case kSearchDocUpdate:
      return DocUpdate(req, token);
    case kSearchDocRead:
      return DocRead(req, token);
    case kSearchBooleanQuery:
      return BooleanQuery(req, token);
    case kSearchCommit:
      return Commit(req, token);
    case kSearchRangeQuery:
      return RangeQuery(req, token);
    case kSearchQuery:
    default:
      return Query(req, token);
  }
}

// The small search every case uses as victim traffic: passes through each
// enabled layer with modest cost.
Task<Status> MiniSearch::Query(const AppRequest& req, CancelToken* token) {
  uint64_t thread_units = 0;
  if (search_threads_ != nullptr) {
    Status s = co_await search_threads_->Acquire(req.key, token);
    if (!s.ok()) {
      co_return s;
    }
    thread_units = 1;
  }
  Status result = Status::Ok();
  bool index_locked = false;
  if (index_lock_ != nullptr) {
    result = co_await index_lock_->AcquireShared(req.key, token);
    index_locked = result.ok();
    if (result.ok()) {
      co_await Delay{executor_, Scaled(req.key, options_.index_read_cost)};
    }
  }
  if (result.ok() && cache_ != nullptr) {
    for (uint64_t i = 0; i < options_.query_cache_lookups && result.ok(); i++) {
      uint64_t entry = rng_.NextZipf(options_.hot_entries, 0.9);
      PageAccess access = co_await cache_->Access(req.key, entry, /*write=*/false, token);
      result = access.status;
    }
  }
  uint64_t alloc = 0;
  if (result.ok() && heap_ != nullptr) {
    alloc = options_.query_alloc_kb;
    result = co_await heap_->Allocate(req.key, alloc, token);
    if (!result.ok()) {
      alloc = 0;
    }
  }
  if (result.ok() && cpu_ != nullptr) {
    UsageReporter reporter(controller_, cpu_resource_, req.key);
    result = co_await cpu_->Consume(Scaled(req.key, options_.query_cpu), token, &reporter);
  }
  if (result.ok()) {
    co_await Delay{executor_, Scaled(req.key, options_.base_query_cost)};
  }
  if (alloc > 0) {
    heap_->Free(req.key, alloc);
  }
  if (index_locked) {
    index_lock_->ReleaseShared(req.key);
  }
  if (thread_units > 0) {
    search_threads_->Release(req.key, thread_units);
  }
  co_return result;
}

// c10: floods the query cache with cold entries, evicting the hot set.
Task<Status> MiniSearch::LargeQuery(const AppRequest& req, CancelToken* token) {
  uint64_t entries = req.arg > 0 ? req.arg : options_.large_query_entries;
  for (uint64_t i = 0; i < entries; i++) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("large query cancelled at entry checkpoint");
    }
    // Cold range beyond the hot set.
    uint64_t entry = options_.hot_entries + (rng_.NextUint64() % options_.cache_entries);
    PageAccess access = co_await cache_->Access(req.key, entry, /*write=*/false, token);
    if (!access.status.ok()) {
      co_return access.status;
    }
    if (i % 64 == 0) {
      controller_->OnProgress(req.key, i, entries);
    }
  }
  co_return Status::Ok();
}

// c11: keeps a very large live set across many steps; GCs become frequent
// and long.
Task<Status> MiniSearch::Aggregation(const AppRequest& req, CancelToken* token) {
  uint64_t total_kb = req.arg > 0 ? req.arg : options_.aggregation_alloc_kb;
  uint64_t steps = options_.aggregation_steps;
  uint64_t per_step = total_kb / steps;
  uint64_t held = 0;
  Status result = Status::Ok();
  for (uint64_t i = 0; i < steps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("aggregation cancelled at step checkpoint");
      break;
    }
    result = co_await heap_->Allocate(req.key, per_step, token);
    if (!result.ok()) {
      break;
    }
    held += per_step;
    co_await Delay{executor_, Scaled(req.key, options_.aggregation_step_cost)};
    controller_->OnProgress(req.key, i + 1, steps);
  }
  if (held > 0) {
    heap_->Free(req.key, held);
  }
  co_return result;
}

// c12: long CPU burn.
Task<Status> MiniSearch::LongQuery(const AppRequest& req, CancelToken* token) {
  UsageReporter reporter(controller_, cpu_resource_, req.key);
  TimeMicros total = req.arg > 0 ? static_cast<TimeMicros>(req.arg) : options_.long_query_cpu;
  constexpr int kSteps = 100;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("long query cancelled at step checkpoint");
    }
    Status s = co_await cpu_->Consume(Scaled(req.key, total / kSteps), token, &reporter);
    if (!s.ok()) {
      co_return s;
    }
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  co_return Status::Ok();
}

// c13 culprit: exclusive doc lock held for a long update.
Task<Status> MiniSearch::DocUpdate(const AppRequest& req, CancelToken* token) {
  InstrumentedRwLock& lock = DocLock(req.arg);
  Status s = co_await lock.AcquireExclusive(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  constexpr int kSteps = 100;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("doc update cancelled at step checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, options_.doc_update_hold / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  lock.ReleaseExclusive(req.key);
  co_return result;
}

// c13 victim.
Task<Status> MiniSearch::DocRead(const AppRequest& req, CancelToken* token) {
  InstrumentedRwLock& lock = DocLock(req.arg);
  Status s = co_await lock.AcquireShared(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, Scaled(req.key, options_.doc_read_cost)};
  lock.ReleaseShared(req.key);
  co_return Status::Ok();
}

// c14 culprit: long boolean query under the index read lock; the periodic
// commit's exclusive request convoys everything behind it.
Task<Status> MiniSearch::BooleanQuery(const AppRequest& req, CancelToken* token) {
  Status s = co_await index_lock_->AcquireShared(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  TimeMicros total =
      req.arg > 0 ? static_cast<TimeMicros>(req.arg) : options_.boolean_query_hold;
  constexpr int kSteps = 100;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("boolean query cancelled at clause checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, total / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  index_lock_->ReleaseShared(req.key);
  co_return result;
}

// Client-triggered commit (c14 victim alongside queries).
Task<Status> MiniSearch::Commit(const AppRequest& req, CancelToken* token) {
  Status s = co_await index_lock_->AcquireExclusive(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, Scaled(req.key, options_.commit_hold)};
  index_lock_->ReleaseExclusive(req.key);
  co_return Status::Ok();
}

// c15 culprit: occupies a search thread for a long time.
Task<Status> MiniSearch::RangeQuery(const AppRequest& req, CancelToken* token) {
  Status gate = co_await heavy_limiter_->Acquire(req.key, token);
  if (!gate.ok()) {
    co_return gate;
  }
  Status s = co_await search_threads_->Acquire(req.key, token);
  if (!s.ok()) {
    heavy_limiter_->Release(req.key);
    co_return s;
  }
  Status result = Status::Ok();
  TimeMicros total = req.arg > 0 ? static_cast<TimeMicros>(req.arg) : options_.range_query_cost;
  constexpr int kSteps = 100;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("range query cancelled at step checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, total / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  search_threads_->Release(req.key);
  heavy_limiter_->Release(req.key);
  co_return result;
}

}  // namespace atropos
