// MiniKv: the etcd analogue (case c16).
//
// Point operations and large range reads share one keyspace lock; a complex
// range read holds it long enough to block every other client.

#ifndef SRC_APPS_MINIKV_H_
#define SRC_APPS_MINIKV_H_

#include <memory>

#include "src/apps/app.h"
#include "src/kv/store.h"

namespace atropos {

enum MiniKvRequestType : int {
  kKvPointOp = 0,    // victim: get/put
  kKvRangeRead = 1,  // culprit: large range read (span in `arg`)
};

struct MiniKvOptions {
  KvStoreOptions store;
  uint64_t default_range_span = 50000;
  TimeMicros extra_request_cost = 0;
};

class MiniKv final : public App {
 public:
  MiniKv(Executor& executor, OverloadController* controller, MiniKvOptions options);

  std::string_view name() const override { return "minikv"; }
  std::string_view RequestTypeName(int type) const override;
  void Start(const AppRequest& req, CompletionFn done) override;
  void Shutdown() override {}

  KvStore* store() { return store_.get(); }

 private:
  Coro Serve(AppRequest req, CompletionFn done);

  MiniKvOptions options_;
  ResourceId lock_resource_ = kInvalidResourceId;
  std::unique_ptr<KvStore> store_;
};

}  // namespace atropos

#endif  // SRC_APPS_MINIKV_H_
