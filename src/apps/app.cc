#include "src/apps/app.h"

#include <string>

namespace atropos {

namespace {

std::string_view OutcomeName(OutcomeKind outcome) {
  switch (outcome) {
    case OutcomeKind::kCompleted:
      return "completed";
    case OutcomeKind::kCancelled:
      return "cancelled";
    case OutcomeKind::kDropped:
      return "dropped";
    case OutcomeKind::kRejected:
      return "rejected";
  }
  return "unknown";
}

}  // namespace

void App::Cancel(uint64_t key) {
  auto it = live_.find(key);
  if (it == live_.end()) {
    return;
  }
  auto c = cancellable_.find(key);
  if (c != cancellable_.end() && !c->second) {
    return;  // explicitly excluded from cancellation (§3.5 safety contract)
  }
  it->second.cancelled = true;
  it->second.token->Cancel();
}

void App::ThrottleTask(uint64_t key, double factor) {
  auto it = live_.find(key);
  if (it != live_.end()) {
    it->second.throttle = factor < 1.0 ? 1.0 : factor;
  }
}

void App::CancelTask(uint64_t key, CancelReason reason) {
  auto it = live_.find(key);
  if (it != live_.end()) {
    it->second.cancel_reason = reason;
  }
  Cancel(key);
}

CancelToken* App::BeginTask(uint64_t key, bool cancellable) {
  LiveTask task;
  task.token = std::make_unique<CancelToken>(executor_);
  CancelToken* token = task.token.get();
  live_[key] = std::move(task);
  cancellable_[key] = cancellable;
  return token;
}

void App::FinishTask(const AppRequest& req, const CompletionFn& done, const Status& status) {
  OutcomeKind outcome = OutcomeKind::kCompleted;
  auto it = live_.find(req.key);
  CancelReason reason = CancelReason::kCulprit;
  if (it != live_.end()) {
    reason = it->second.cancel_reason;
  }
  switch (status.code()) {
    case StatusCode::kOk:
      outcome = OutcomeKind::kCompleted;
      break;
    case StatusCode::kCancelled:
      outcome =
          reason == CancelReason::kVictimDrop ? OutcomeKind::kDropped : OutcomeKind::kCancelled;
      break;
    case StatusCode::kResourceExhausted:
      outcome = OutcomeKind::kRejected;
      break;
    default:
      outcome = OutcomeKind::kDropped;
      break;
  }
  live_.erase(req.key);
  cancellable_.erase(req.key);
  if (metrics_ != nullptr) {
    Counter*& by_type = type_counters_[req.type];
    if (by_type == nullptr) {
      by_type = metrics_->GetCounter(std::string(name()) + ".requests." +
                                     std::string(RequestTypeName(req.type)));
    }
    by_type->Inc();
    Counter*& by_outcome = outcome_counters_[static_cast<size_t>(outcome)];
    if (by_outcome == nullptr) {
      by_outcome =
          metrics_->GetCounter(std::string(name()) + ".outcome." + std::string(OutcomeName(outcome)));
    }
    by_outcome->Inc();
  }
  if (done) {
    done(req, outcome);
  }
}

TimeMicros App::Scaled(uint64_t key, TimeMicros t) const {
  auto it = live_.find(key);
  if (it == live_.end() || it->second.throttle <= 1.0) {
    return t;
  }
  return static_cast<TimeMicros>(static_cast<double>(t) * it->second.throttle);
}

CancelToken* App::TokenOf(uint64_t key) {
  auto it = live_.find(key);
  return it == live_.end() ? nullptr : it->second.token.get();
}

void App::InitClientGates(int num_classes, int64_t parties_capacity) {
  // Gates start effectively unbounded; they only bind once a controller
  // (PARTIES) assigns shares of `parties_capacity`.
  gate_slots_ = parties_capacity;
  class_gates_.clear();
  for (int i = 0; i < num_classes; i++) {
    class_gates_.push_back(std::make_unique<AdjustableLimiter>(executor_, int64_t{1} << 40));
  }
}

void App::SetClientShare(int client_class, double share) {
  if (client_class < 0 || static_cast<size_t>(client_class) >= class_gates_.size()) {
    return;
  }
  auto limit = static_cast<int64_t>(share * static_cast<double>(gate_slots_));
  class_gates_[static_cast<size_t>(client_class)]->SetLimit(limit < 1 ? 1 : limit);
}

Task<Status> App::GateEnter(const AppRequest& req, CancelToken* token) {
  if (class_gates_.empty()) {
    co_return Status::Ok();
  }
  size_t idx = static_cast<size_t>(req.client_class) % class_gates_.size();
  co_return co_await class_gates_[idx]->Acquire(req.key, token);
}

void App::GateExit(const AppRequest& req) {
  if (class_gates_.empty()) {
    return;
  }
  size_t idx = static_cast<size_t>(req.client_class) % class_gates_.size();
  class_gates_[idx]->Release(req.key);
}

}  // namespace atropos
