// MiniSearch: the Elasticsearch/Solr analogue (cases c10–c15).
//
// A search server assembled from: an LRU query cache (c10), a GC'd heap
// (c11), a shared CPU pool (c12), striped per-document locks (c13), a global
// index reader-writer lock with background commits (c14), and a bounded
// search thread pool (c15). Scenario options choose which layers queries
// exercise, matching the paper's per-case reproductions.

#ifndef SRC_APPS_MINISEARCH_H_
#define SRC_APPS_MINISEARCH_H_

#include <memory>
#include <vector>

#include "src/apps/app.h"
#include "src/atropos/instrument.h"
#include "src/common/rng.h"
#include "src/db/buffer_pool.h"
#include "src/search/heap.h"
#include "src/sim/cpu.h"

namespace atropos {

enum MiniSearchRequestType : int {
  kSearchQuery = 0,        // victim: small search through the enabled layers
  kSearchLargeQuery = 1,   // c10 culprit: floods the query cache
  kSearchAggregation = 2,  // c11 culprit: keeps a huge live set on the heap
  kSearchLongQuery = 3,    // c12 culprit: CPU hog
  kSearchDocUpdate = 4,    // c13 culprit: long exclusive doc lock
  kSearchDocRead = 5,      // c13 victim: shared doc lock
  kSearchBooleanQuery = 6, // c14 culprit: holds the index read lock for long
  kSearchCommit = 7,       // c14: brief exclusive index lock (forms the convoy)
  kSearchRangeQuery = 8,   // c15 culprit: occupies search threads for long
};

struct MiniSearchOptions {
  bool use_cache = false;
  bool use_heap = false;
  bool use_cpu = false;
  bool use_doc_locks = false;
  bool use_index_lock = false;
  bool use_queue = false;

  BufferPoolOptions cache;          // query cache (entries as "pages")
  uint64_t cache_entries = 100000;  // distinct cacheable entries
  uint64_t hot_entries = 512;
  uint64_t query_cache_lookups = 4;
  uint64_t large_query_entries = 8192;  // c10 culprit footprint

  GcHeapOptions heap;
  uint64_t query_alloc_kb = 256;
  uint64_t aggregation_alloc_kb = 2 * 1024 * 1024;  // 2 GB live set
  uint64_t aggregation_steps = 200;
  TimeMicros aggregation_step_cost = 25000;  // compute per step while holding the live set

  uint64_t cpu_cores = 8;
  TimeMicros query_cpu = 2000;
  TimeMicros long_query_cpu = 8'000'000;

  int doc_lock_stripes = 64;
  TimeMicros doc_read_cost = 1500;
  TimeMicros doc_update_hold = 5'000'000;

  TimeMicros index_read_cost = 1500;
  TimeMicros boolean_query_hold = 6'000'000;
  TimeMicros commit_hold = 20'000;
  TimeMicros commit_interval = 500'000;  // background commit cadence

  uint64_t search_threads = 16;
  TimeMicros range_query_cost = 5'000'000;

  TimeMicros base_query_cost = 500;
  TimeMicros extra_request_cost = 0;
  uint64_t seed = 2;
};

class MiniSearch final : public App {
 public:
  MiniSearch(Executor& executor, OverloadController* controller, MiniSearchOptions options);
  ~MiniSearch() override;

  std::string_view name() const override { return "minisearch"; }
  std::string_view RequestTypeName(int type) const override;
  void Start(const AppRequest& req, CompletionFn done) override;
  void Shutdown() override;
  void SetTypeReservation(int request_type, int workers) override;

  GcHeap* heap() { return heap_.get(); }
  BufferPool* cache() { return cache_.get(); }
  CpuPool* cpu() { return cpu_.get(); }

 private:
  Coro Serve(AppRequest req, CompletionFn done);
  Coro CommitLoop();
  Task<Status> Dispatch(const AppRequest& req, CancelToken* token);

  Task<Status> Query(const AppRequest& req, CancelToken* token);
  Task<Status> LargeQuery(const AppRequest& req, CancelToken* token);
  Task<Status> Aggregation(const AppRequest& req, CancelToken* token);
  Task<Status> LongQuery(const AppRequest& req, CancelToken* token);
  Task<Status> DocUpdate(const AppRequest& req, CancelToken* token);
  Task<Status> DocRead(const AppRequest& req, CancelToken* token);
  Task<Status> BooleanQuery(const AppRequest& req, CancelToken* token);
  Task<Status> Commit(const AppRequest& req, CancelToken* token);
  Task<Status> RangeQuery(const AppRequest& req, CancelToken* token);

  InstrumentedRwLock& DocLock(uint64_t doc);

  MiniSearchOptions options_;
  Rng rng_;

  ResourceId cache_resource_ = kInvalidResourceId;
  ResourceId heap_resource_ = kInvalidResourceId;
  ResourceId cpu_resource_ = kInvalidResourceId;
  ResourceId doc_lock_resource_ = kInvalidResourceId;
  ResourceId index_lock_resource_ = kInvalidResourceId;
  ResourceId queue_resource_ = kInvalidResourceId;

  std::unique_ptr<BufferPool> cache_;
  std::unique_ptr<GcHeap> heap_;
  std::unique_ptr<CpuPool> cpu_;
  std::vector<std::unique_ptr<InstrumentedRwLock>> doc_locks_;
  std::unique_ptr<InstrumentedRwLock> index_lock_;
  std::unique_ptr<InstrumentedSemaphore> search_threads_;
  std::unique_ptr<AdjustableLimiter> heavy_limiter_;
  std::unique_ptr<CancelToken> commit_stop_;
};

}  // namespace atropos

#endif  // SRC_APPS_MINISEARCH_H_
