#include "src/apps/minidb.h"

#include <algorithm>

namespace atropos {

namespace {
constexpr uint64_t kPurgeKey = kBackgroundKeyBase + 1;
constexpr uint64_t kWalFlusherKey = kBackgroundKeyBase + 2;
constexpr uint64_t kPrunerKey = kBackgroundKeyBase + 3;
}  // namespace

MiniDb::MiniDb(Executor& executor, OverloadController* controller, MiniDbOptions options)
    : App(executor, controller), options_(options), rng_(options.seed) {
  if (options_.use_table_locks) {
    table_lock_resource_ = controller_->RegisterResource("table_locks", ResourceClass::kLock);
    locks_ = std::make_unique<TableLockManager>(executor_, options_.num_tables, controller_,
                                                table_lock_resource_, options_.cancel_mode);
  }
  if (options_.use_tickets) {
    ticket_resource_ = controller_->RegisterResource("innodb_tickets", ResourceClass::kQueue);
    tickets_ = std::make_unique<InstrumentedSemaphore>(executor_, options_.innodb_tickets,
                                                       controller_, ticket_resource_,
                                                       options_.cancel_mode);
  }
  if (options_.use_io) {
    io_resource_ = controller_->RegisterResource("disk_io", ResourceClass::kIo);
    io_ = std::make_unique<IoDevice>(executor_, options_.io_bytes_per_second);
  }
  if (options_.use_buffer_pool) {
    pool_resource_ = controller_->RegisterResource("buffer_pool", ResourceClass::kMemory);
    if (io_ != nullptr) {
      // Misses and dirty flushes share the disk (the real thrashing path).
      options_.pool.device = io_.get();
    }
    options_.pool.cancel_mode = options_.cancel_mode;
    pool_ = std::make_unique<BufferPool>(executor_, options_.pool, controller_, pool_resource_);
  }
  if (options_.use_undo) {
    undo_resource_ = controller_->RegisterResource("undo_log", ResourceClass::kLock);
    undo_ = std::make_unique<UndoLog>(executor_, options_.undo, controller_, undo_resource_);
    controller_->OnTaskRegistered(kPurgeKey, /*background=*/true, /*cancellable=*/false);
    auto stop = std::make_unique<CancelToken>(executor_);
    undo_->StartPurge(kPurgeKey, stop.get());
    background_stops_.push_back(std::move(stop));
  }
  if (options_.use_mvcc) {
    mvcc_resource_ = controller_->RegisterResource("mvcc_versions", ResourceClass::kLock);
    mvcc_ = std::make_unique<MvccTable>(executor_, options_.mvcc, controller_, mvcc_resource_);
    controller_->OnTaskRegistered(kPrunerKey, /*background=*/true, /*cancellable=*/false);
    auto stop = std::make_unique<CancelToken>(executor_);
    mvcc_->StartPruner(kPrunerKey, stop.get());
    background_stops_.push_back(std::move(stop));
  }
  if (options_.use_wal) {
    wal_resource_ = controller_->RegisterResource("wal", ResourceClass::kLock);
    wal_ = std::make_unique<WriteAheadLog>(executor_, options_.wal, controller_, wal_resource_);
    controller_->OnTaskRegistered(kWalFlusherKey, /*background=*/true, /*cancellable=*/false);
    auto stop = std::make_unique<CancelToken>(executor_);
    wal_->StartFlusher(kWalFlusherKey, stop.get());
    background_stops_.push_back(std::move(stop));
  }
  InitClientGates(/*num_classes=*/2, /*parties_capacity=*/64);
  heavy_limiter_ = std::make_unique<AdjustableLimiter>(executor_, 1024);
}

void MiniDb::SetTypeReservation(int request_type, int workers) {
  // DARC reserves workers for the short type; that caps how many tickets the
  // heavy (slow-query) type may occupy concurrently.
  auto tickets = static_cast<int64_t>(options_.innodb_tickets);
  int64_t cap = tickets - workers;
  heavy_limiter_->SetLimit(cap < 1 ? 1 : cap);
}

MiniDb::~MiniDb() { Shutdown(); }

void MiniDb::Shutdown() {
  for (auto& stop : background_stops_) {
    stop->Cancel();
  }
}

uint64_t MiniDb::PageId(int table, uint64_t page) const {
  return static_cast<uint64_t>(table) * options_.pages_per_table + page;
}

int MiniDb::TableOf(const AppRequest& req) const {
  return static_cast<int>(req.arg % static_cast<uint64_t>(options_.num_tables));
}

std::string_view MiniDb::RequestTypeName(int type) const {
  switch (type) {
    case kDbPointSelect:
      return "point_select";
    case kDbRowUpdate:
      return "row_update";
    case kDbDumpQuery:
      return "dump_query";
    case kDbTableScan:
      return "table_scan";
    case kDbBackup:
      return "backup";
    case kDbSlowQuery:
      return "slow_query";
    case kDbSelectForUpdate:
      return "select_for_update";
    case kDbInsert:
      return "insert";
    case kDbMvccRead:
      return "mvcc_read";
    case kDbMvccBulkWrite:
      return "mvcc_bulk_write";
    case kDbWalInsert:
      return "wal_insert";
    case kDbWalBulkInsert:
      return "wal_bulk_insert";
    case kDbIoQuery:
      return "io_query";
    case kDbVacuum:
      return "vacuum";
    case kDbUndoWrite:
      return "undo_write";
    case kDbOldSnapshotRead:
      return "old_snapshot_read";
    case kDbAlterTable:
      return "alter_table";
    default:
      return "request";
  }
}

void MiniDb::Start(const AppRequest& req, CompletionFn done) { Serve(req, std::move(done)); }

Coro MiniDb::Serve(AppRequest req, CompletionFn done) {
  co_await BindExecutor{executor_};
  CancelToken* token = BeginTask(req.key, !req.non_cancellable);
  if (options_.extra_request_cost > 0) {
    co_await Delay{executor_, options_.extra_request_cost};
  }
  Status status = co_await GateEnter(req, token);
  if (status.ok()) {
    status = co_await Dispatch(req, token);
    GateExit(req);
  }
  FinishTask(req, done, status);
}

Task<Status> MiniDb::Dispatch(const AppRequest& req, CancelToken* token) {
  switch (req.type) {
    case kDbPointSelect:
      return PointSelect(req, token);
    case kDbRowUpdate:
      return RowUpdate(req, token);
    case kDbDumpQuery:
      return DumpQuery(req, token);
    case kDbTableScan:
      return TableScan(req, token);
    case kDbBackup:
      return Backup(req, token);
    case kDbSlowQuery:
      return SlowQuery(req, token);
    case kDbSelectForUpdate:
      return SelectForUpdate(req, token);
    case kDbInsert:
      return Insert(req, token);
    case kDbMvccRead:
      return MvccRead(req, token);
    case kDbMvccBulkWrite:
      return MvccBulkWrite(req, token);
    case kDbWalInsert:
      return WalInsert(req, token);
    case kDbWalBulkInsert:
      return WalBulkInsert(req, token);
    case kDbIoQuery:
      return IoQuery(req, token);
    case kDbVacuum:
      return Vacuum(req, token);
    case kDbUndoWrite:
      return UndoWrite(req, token);
    case kDbOldSnapshotRead:
      return OldSnapshotRead(req, token);
    case kDbAlterTable:
      return AlterTable(req, token);
    default:
      break;
  }
  return PointSelect(req, token);
}

// ---------------------------------------------------------------------------
// Lightweight operations

Task<Status> MiniDb::PointSelect(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  // MySQL order: table locks are taken before entering InnoDB's concurrency
  // gate, so a request blocked on a table lock holds no ticket.
  Status result = Status::Ok();
  bool locked = false;
  if (locks_ != nullptr) {
    result = co_await locks_->table(table).AcquireShared(req.key, token);
    locked = result.ok();
  }
  uint64_t ticket_units = 0;
  if (result.ok() && tickets_ != nullptr) {
    Status s = co_await tickets_->Acquire(req.key, token);
    if (!s.ok()) {
      if (locked) {
        locks_->table(table).ReleaseShared(req.key);
      }
      co_return s;
    }
    ticket_units = 1;
  }
  if (result.ok()) {
    if (pool_ != nullptr) {
      for (uint64_t i = 0; i < options_.point_pages && result.ok(); i++) {
        uint64_t page = rng_.NextZipf(options_.hot_pages_per_table, 0.9);
        PageAccess access =
            co_await pool_->Access(req.key, PageId(table, page), /*write=*/false, token);
        result = access.status;
      }
    }
    if (result.ok()) {
      co_await Delay{executor_, Scaled(req.key, options_.point_select_cost)};
    }
  }
  if (locked) {
    locks_->table(table).ReleaseShared(req.key);
  }
  if (ticket_units > 0) {
    tickets_->Release(req.key, ticket_units);
  }
  co_return result;
}

Task<Status> MiniDb::RowUpdate(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  Status result = Status::Ok();
  bool locked = false;
  if (locks_ != nullptr) {
    result = co_await locks_->table(table).AcquireShared(req.key, token);
    locked = result.ok();
  }
  uint64_t ticket_units = 0;
  if (result.ok() && tickets_ != nullptr) {
    Status s = co_await tickets_->Acquire(req.key, token);
    if (!s.ok()) {
      if (locked) {
        locks_->table(table).ReleaseShared(req.key);
      }
      co_return s;
    }
    ticket_units = 1;
  }
  if (result.ok()) {
    if (pool_ != nullptr) {
      uint64_t page = rng_.NextZipf(options_.hot_pages_per_table, 0.9);
      PageAccess access =
          co_await pool_->Access(req.key, PageId(table, page), /*write=*/true, token);
      result = access.status;
    }
    if (result.ok() && undo_ != nullptr) {
      result = co_await undo_->Append(req.key, token);
    }
    if (result.ok() && wal_ != nullptr) {
      result = co_await wal_->AppendAndCommit(req.key, 1, token);
    }
    if (result.ok()) {
      co_await Delay{executor_, Scaled(req.key, options_.row_update_cost)};
    }
  }
  if (locked) {
    locks_->table(table).ReleaseShared(req.key);
  }
  if (ticket_units > 0) {
    tickets_->Release(req.key, ticket_units);
  }
  co_return result;
}

// ---------------------------------------------------------------------------
// c5: buffer pool monopolization

Task<Status> MiniDb::DumpQuery(const AppRequest& req, CancelToken* token) {
  int table = static_cast<int>((req.arg & 0xff) % static_cast<uint64_t>(options_.num_tables));
  // Sequentially reads every page of the table: far more than the pool holds.
  // High bits of arg (if set) bound the dump's page count.
  uint64_t total = req.arg >> 8 ? req.arg >> 8 : options_.pages_per_table;
  total = std::min(total, options_.pages_per_table);
  for (uint64_t page = 0; page < total; page++) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("dump query cancelled at page checkpoint");
    }
    PageAccess access =
        co_await pool_->Access(req.key, PageId(table, page), /*write=*/false, token);
    if (!access.status.ok()) {
      co_return access.status;
    }
    if (page % 64 == 0 && controller_ != nullptr) {
      controller_->OnProgress(req.key, page, total);  // GetNext: rows_examined analog
    }
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// c1: long scan + backup convoy

Task<Status> MiniDb::TableScan(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  Status s = co_await locks_->table(table).AcquireShared(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  uint64_t rows = options_.scan_rows;
  constexpr uint64_t kBatch = 10'000;
  for (uint64_t done = 0; done < rows; done += kBatch) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("table scan cancelled at batch checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, options_.scan_cost_per_kilo_row * (kBatch / 1000))};
    controller_->OnProgress(req.key, std::min(done + kBatch, rows), rows);
  }
  locks_->table(table).ReleaseShared(req.key);
  co_return result;
}

Task<Status> MiniDb::Backup(const AppRequest& req, CancelToken* token) {
  int acquired = 0;
  Status s = co_await locks_->AcquireAllExclusive(req.key, token, &acquired);
  if (!s.ok()) {
    // Cancellation mid-acquisition: release what was taken so the convoy
    // drains — the "safe initiator" cleanup a real backup performs.
    locks_->ReleaseAllExclusive(req.key, acquired);
    co_return s;
  }
  Status result = Status::Ok();
  // Hold everything while copying. Checkpointed so cancellation can abort.
  constexpr int kChunks = 20;
  TimeMicros chunk = options_.backup_work_cost / kChunks;
  for (int i = 0; i < kChunks; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("backup cancelled at chunk checkpoint");
      break;
    }
    co_await Delay{executor_, chunk};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kChunks));
  }
  locks_->ReleaseAllExclusive(req.key, acquired);
  co_return result;
}

// ---------------------------------------------------------------------------
// c2: InnoDB ticket monopolization

Task<Status> MiniDb::SlowQuery(const AppRequest& req, CancelToken* token) {
  Status gate = co_await heavy_limiter_->Acquire(req.key, token);
  if (!gate.ok()) {
    co_return gate;
  }
  Status s = co_await tickets_->Acquire(req.key, token);
  if (!s.ok()) {
    heavy_limiter_->Release(req.key);
    co_return s;
  }
  Status result = Status::Ok();
  TimeMicros total = options_.slow_query_cost;
  constexpr int kSteps = 100;
  TimeMicros step = total / kSteps;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("slow query cancelled at step checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, step)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  tickets_->Release(req.key);
  heavy_limiter_->Release(req.key);
  co_return result;
}

// ---------------------------------------------------------------------------
// c4: SELECT ... FOR UPDATE lock hold

Task<Status> MiniDb::SelectForUpdate(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  Status s = co_await locks_->table(table).AcquireExclusive(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  TimeMicros total = options_.sfu_hold_cost;
  constexpr int kSteps = 100;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("select-for-update cancelled at step checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, total / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  locks_->table(table).ReleaseExclusive(req.key);
  co_return result;
}

Task<Status> MiniDb::Insert(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  Status s = co_await locks_->table(table).AcquireShared(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, Scaled(req.key, options_.row_update_cost)};
  locks_->table(table).ReleaseShared(req.key);
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// c6: MVCC version chains

Task<Status> MiniDb::MvccRead(const AppRequest& req, CancelToken* token) {
  co_return co_await mvcc_->Read(req.key, token);
}

Task<Status> MiniDb::MvccBulkWrite(const AppRequest& req, CancelToken* token) {
  uint64_t rows = req.arg > 0 ? req.arg : 20'000;
  co_return co_await mvcc_->BulkWrite(req.key, rows, token);
}

// ---------------------------------------------------------------------------
// c7: WAL group commit

Task<Status> MiniDb::WalInsert(const AppRequest& req, CancelToken* token) {
  co_return co_await wal_->AppendAndCommit(req.key, 1, token);
}

Task<Status> MiniDb::WalBulkInsert(const AppRequest& req, CancelToken* token) {
  uint64_t records = req.arg > 0 ? req.arg : 20'000;
  constexpr uint64_t kBatch = 500;
  uint64_t appended = 0;
  while (appended < records) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("bulk insert cancelled at batch checkpoint");
    }
    uint64_t batch = std::min(kBatch, records - appended);
    Status s = co_await wal_->Append(req.key, batch, token);
    if (!s.ok()) {
      co_return s;
    }
    appended += batch;
    controller_->OnProgress(req.key, appended, records);
  }
  co_return co_await wal_->WaitFlush(req.key, records, token);
}

// ---------------------------------------------------------------------------
// c8: vacuum I/O interference

Task<Status> MiniDb::IoQuery(const AppRequest& req, CancelToken* token) {
  UsageReporter reporter(controller_, io_resource_, req.key);
  co_return co_await io_->Transfer(options_.io_query_bytes, token, &reporter);
}

Task<Status> MiniDb::Vacuum(const AppRequest& req, CancelToken* token) {
  UsageReporter reporter(controller_, io_resource_, req.key);
  uint64_t total = req.arg > 0 ? req.arg : options_.vacuum_bytes;
  uint64_t moved = 0;
  while (moved < total) {
    if (token != nullptr && token->cancelled()) {
      co_return Status::Cancelled("vacuum cancelled at chunk checkpoint");
    }
    uint64_t chunk = std::min(options_.vacuum_chunk_bytes, total - moved);
    Status s = co_await io_->Transfer(chunk, token, &reporter);
    if (!s.ok()) {
      co_return s;
    }
    moved += chunk;
    controller_->OnProgress(req.key, moved, total);
  }
  co_return Status::Ok();
}

// ---------------------------------------------------------------------------
// Table rebuild: holds the exclusive table lock while rewriting every page —
// a culprit with gains on two resources at once (used by the Fig 13 ablation).

Task<Status> MiniDb::AlterTable(const AppRequest& req, CancelToken* token) {
  int table = TableOf(req);
  Status s = co_await locks_->table(table).AcquireExclusive(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  Status result = Status::Ok();
  uint64_t total = options_.pages_per_table;
  for (uint64_t page = 0; page < total; page++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("alter table cancelled at page checkpoint");
      break;
    }
    if (pool_ != nullptr) {
      PageAccess access =
          co_await pool_->Access(req.key, PageId(table, page), /*write=*/true, token);
      if (!access.status.ok()) {
        result = access.status;
        break;
      }
    } else {
      co_await Delay{executor_, 200};
    }
    if (page % 64 == 0) {
      controller_->OnProgress(req.key, page, total);
    }
  }
  locks_->table(table).ReleaseExclusive(req.key);
  co_return result;
}

// ---------------------------------------------------------------------------
// c3: undo-log history pressure

Task<Status> MiniDb::UndoWrite(const AppRequest& req, CancelToken* token) {
  Status s = co_await undo_->Append(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, Scaled(req.key, options_.row_update_cost)};
  co_return Status::Ok();
}

Task<Status> MiniDb::OldSnapshotRead(const AppRequest& req, CancelToken* token) {
  undo_->PinSnapshot(req.key);
  Status result = Status::Ok();
  TimeMicros total = req.arg > 0 ? static_cast<TimeMicros>(req.arg) : Seconds(8);
  constexpr int kSteps = 200;
  for (int i = 0; i < kSteps; i++) {
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("old-snapshot read cancelled at step checkpoint");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, total / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  undo_->UnpinSnapshot(req.key);
  co_return result;
}

}  // namespace atropos
