#include "src/apps/miniweb.h"

#include <algorithm>

namespace atropos {

MiniWeb::MiniWeb(Executor& executor, OverloadController* controller, MiniWebOptions options)
    : App(executor, controller), options_(options) {
  pool_resource_ = controller_->RegisterResource("worker_pool", ResourceClass::kQueue);
  pool_ = std::make_unique<WorkerPool>(executor_, options_.pool, controller_, pool_resource_);
  script_limiter_ = std::make_unique<AdjustableLimiter>(
      executor_, static_cast<int64_t>(options_.pool.max_clients));
  InitClientGates(/*num_classes=*/2,
                  /*parties_capacity=*/static_cast<int64_t>(options_.pool.max_clients));
}

void MiniWeb::SetTypeReservation(int request_type, int workers) {
  if (request_type != kWebStatic) {
    return;
  }
  int64_t cap = static_cast<int64_t>(options_.pool.max_clients) - workers;
  script_limiter_->SetLimit(std::max<int64_t>(cap, 1));
}

std::string_view MiniWeb::RequestTypeName(int type) const {
  switch (type) {
    case kWebStatic:
      return "static";
    case kWebScript:
      return "script";
    default:
      return "request";
  }
}

void MiniWeb::Start(const AppRequest& req, CompletionFn done) { Serve(req, std::move(done)); }

Coro MiniWeb::Serve(AppRequest req, CompletionFn done) {
  co_await BindExecutor{executor_};
  bool cancellable = !req.non_cancellable &&
                     (req.type != kWebScript || options_.allow_thread_cancel);
  CancelToken* token = BeginTask(req.key, cancellable);
  if (options_.extra_request_cost > 0) {
    co_await Delay{executor_, options_.extra_request_cost};
  }
  Status status = co_await GateEnter(req, token);
  if (status.ok()) {
    if (req.type == kWebScript) {
      status = co_await Script(req, token);
    } else {
      status = co_await Static(req, token);
    }
    GateExit(req);
  }
  FinishTask(req, done, status);
}

Task<Status> MiniWeb::Static(const AppRequest& req, CancelToken* token) {
  Status s = co_await pool_->Claim(req.key, token);
  if (!s.ok()) {
    co_return s;
  }
  co_await Delay{executor_, Scaled(req.key, options_.static_cost)};
  pool_->Release(req.key);
  co_return Status::Ok();
}

Task<Status> MiniWeb::Script(const AppRequest& req, CancelToken* token) {
  // DARC reservation gate: script concurrency may be capped below MaxClients.
  Status gate = co_await script_limiter_->Acquire(req.key, token);
  if (!gate.ok()) {
    co_return gate;
  }
  Status s = co_await pool_->Claim(req.key, token);
  if (!s.ok()) {
    script_limiter_->Release(req.key);
    co_return s;
  }
  Status result = Status::Ok();
  TimeMicros total = req.arg > 0 ? static_cast<TimeMicros>(req.arg) : options_.script_cost;
  constexpr int kSteps = 50;
  for (int i = 0; i < kSteps; i++) {
    // Scripts only observe cancellation when the thread-level flag allows it;
    // consistency is preserved because unflushed script output is discarded
    // (§5.2 "Incomplete Cancellation Support in Apache").
    if (token != nullptr && token->cancelled()) {
      result = Status::Cancelled("script aborted via thread-level cancel");
      break;
    }
    co_await Delay{executor_, Scaled(req.key, total / kSteps)};
    controller_->OnProgress(req.key, static_cast<uint64_t>(i + 1),
                            static_cast<uint64_t>(kSteps));
  }
  pool_->Release(req.key);
  script_limiter_->Release(req.key);
  co_return result;
}

}  // namespace atropos
