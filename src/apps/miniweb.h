// MiniWeb: the Apache httpd analogue (case c9).
//
// A bounded worker pool serves fast static requests and slow scripted (PHP)
// requests. Scripts hold a worker for seconds; enough of them exhaust
// MaxClients and starve the static traffic. Apache's built-in cancellation
// cannot stop a running script, so — as §5.2 describes — cancellation of
// scripts is only possible when the thread-level (pthread_cancel-style) flag
// is enabled.

#ifndef SRC_APPS_MINIWEB_H_
#define SRC_APPS_MINIWEB_H_

#include <memory>

#include "src/apps/app.h"
#include "src/atropos/instrument.h"
#include "src/web/worker_pool.h"

namespace atropos {

enum MiniWebRequestType : int {
  kWebStatic = 0,  // victim: fast file serve
  kWebScript = 1,  // culprit: slow PHP-style handler
};

struct MiniWebOptions {
  WorkerPoolOptions pool;
  TimeMicros static_cost = 2000;        // 2ms static file
  TimeMicros script_cost = 4'000'000;   // 4s script
  // §5.2: thread-level cancellation flag. When false, scripts ignore Cancel()
  // and Atropos cannot terminate them.
  bool allow_thread_cancel = true;
  TimeMicros extra_request_cost = 0;
};

class MiniWeb final : public App {
 public:
  MiniWeb(Executor& executor, OverloadController* controller, MiniWebOptions options);

  std::string_view name() const override { return "miniweb"; }
  std::string_view RequestTypeName(int type) const override;
  void Start(const AppRequest& req, CompletionFn done) override;
  void Shutdown() override {}

  // DARC: reserving workers for static requests caps script concurrency.
  void SetTypeReservation(int request_type, int workers) override;

  WorkerPool* worker_pool() { return pool_.get(); }

 private:
  Coro Serve(AppRequest req, CompletionFn done);
  Task<Status> Static(const AppRequest& req, CancelToken* token);
  Task<Status> Script(const AppRequest& req, CancelToken* token);

  MiniWebOptions options_;
  ResourceId pool_resource_ = kInvalidResourceId;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<AdjustableLimiter> script_limiter_;
};

}  // namespace atropos

#endif  // SRC_APPS_MINIWEB_H_
