#include "src/apps/minikv.h"

namespace atropos {

MiniKv::MiniKv(Executor& executor, OverloadController* controller, MiniKvOptions options)
    : App(executor, controller), options_(options) {
  lock_resource_ = controller_->RegisterResource("keyspace_lock", ResourceClass::kLock);
  store_ = std::make_unique<KvStore>(executor_, options_.store, controller_, lock_resource_);
  InitClientGates(/*num_classes=*/2, /*parties_capacity=*/64);
}

std::string_view MiniKv::RequestTypeName(int type) const {
  switch (type) {
    case kKvPointOp:
      return "point_op";
    case kKvRangeRead:
      return "range_read";
    default:
      return "request";
  }
}

void MiniKv::Start(const AppRequest& req, CompletionFn done) { Serve(req, std::move(done)); }

Coro MiniKv::Serve(AppRequest req, CompletionFn done) {
  co_await BindExecutor{executor_};
  CancelToken* token = BeginTask(req.key, !req.non_cancellable);
  if (options_.extra_request_cost > 0) {
    co_await Delay{executor_, options_.extra_request_cost};
  }
  Status status = co_await GateEnter(req, token);
  if (status.ok()) {
    if (req.type == kKvRangeRead) {
      uint64_t span = req.arg > 0 ? req.arg : options_.default_range_span;
      status = co_await store_->RangeRead(req.key, span, token);
    } else {
      status = co_await store_->PointOp(req.key, token);
    }
    GateExit(req);
  }
  FinishTask(req, done, status);
}

}  // namespace atropos
