// Apache-style bounded worker pool (case c9).
//
// Incoming requests wait for a worker slot up to MaxClients concurrent
// executions; beyond that they queue in a bounded accept backlog and are
// rejected (503) once the backlog is full. Slow scripted requests that hold
// workers for seconds exhaust the pool and starve every fast request — the
// classic "Apache reaching MaxClients" overload.

#ifndef SRC_WEB_WORKER_POOL_H_
#define SRC_WEB_WORKER_POOL_H_

#include "src/atropos/instrument.h"

namespace atropos {

struct WorkerPoolOptions {
  uint64_t max_clients = 32;   // concurrent workers
  uint64_t backlog = 256;      // accept queue beyond the workers
};

class WorkerPool {
 public:
  WorkerPool(Executor& executor, const WorkerPoolOptions& options, OverloadController* tracer,
             ResourceId resource)
      : options_(options),
        workers_(executor, options.max_clients, tracer, resource),
        queued_(0) {}

  // Claims a worker for `key`. Returns kResourceExhausted immediately when
  // the backlog is full (connection rejected), kCancelled if aborted while
  // queued. On success the caller must Release() when done.
  Task<Status> Claim(uint64_t key, CancelToken* token) {
    if (queued_ >= options_.backlog) {
      co_return Status::ResourceExhausted("accept backlog full");
    }
    queued_++;
    Status s = co_await workers_.Acquire(key, token);
    queued_--;
    co_return s;
  }

  void Release(uint64_t key) { workers_.Release(key); }

  uint64_t busy_workers() {
    return workers_.raw().capacity() - workers_.raw().available();
  }
  uint64_t queued() const { return queued_; }
  uint64_t max_clients() const { return options_.max_clients; }

 private:
  WorkerPoolOptions options_;
  InstrumentedSemaphore workers_;
  uint64_t queued_;
};

}  // namespace atropos

#endif  // SRC_WEB_WORKER_POOL_H_
