// Factory for the overload controllers compared in the evaluation.

#ifndef SRC_WORKLOAD_CONTROLLERS_H_
#define SRC_WORKLOAD_CONTROLLERS_H_

#include <memory>
#include <string_view>

#include "src/atropos/runtime.h"
#include "src/baselines/darc.h"
#include "src/baselines/parties.h"
#include "src/baselines/pbox.h"
#include "src/baselines/protego.h"

namespace atropos {

enum class ControllerKind {
  kNone = 0,                  // uncontrolled ("Overload" curves)
  kAtropos = 1,
  kAtroposHeuristic = 2,      // Fig 13 baseline 1
  kAtroposCurrentUsage = 3,   // Fig 13 baseline 2
  kProtego = 4,
  kPBox = 5,
  kDarc = 6,
  kParties = 7,
};

std::string_view ControllerKindName(ControllerKind kind);

struct ControllerParams {
  TimeMicros window = Millis(50);
  double slo_latency_increase = 0.20;
  TimeMicros baseline_p99 = 0;  // 0 = calibrate online from early windows
  int total_workers = 16;       // DARC reservation pool size
  bool cancellation_enabled = true;  // Fig 14: tracing on, actions off
  TimestampMode timestamp_mode = TimestampMode::kSampled;
  TimeMicros min_cancel_interval = Millis(50);
};

std::unique_ptr<OverloadController> MakeController(ControllerKind kind, Clock* clock,
                                                   ControlSurface* surface,
                                                   const ControllerParams& params);

}  // namespace atropos

#endif  // SRC_WORKLOAD_CONTROLLERS_H_
