// The 16 reproduced real-world overload cases (paper Table 2) and the runner
// that executes one case under a chosen controller.
//
// Every case pairs steady victim traffic with culprit work injected from
// t = 3 s (controllers calibrate their latency baseline during the first
// second). The shapes follow the original bug reports: lock convoys, queue
// monopolization, cache/heap thrashing, CPU and I/O saturation.

#ifndef SRC_WORKLOAD_CASES_H_
#define SRC_WORKLOAD_CASES_H_

#include <array>
#include <string>

#include "src/workload/controllers.h"
#include "src/workload/frontend.h"

namespace atropos {

struct CaseInfo {
  int id;                     // 1..16
  const char* app;            // minidb / miniweb / minisearch / minikv
  const char* paper_app;      // the real application the case reproduces
  const char* resource_type;  // Table 2 "Resource Type"
  const char* resource;       // Table 2 "Resource Detail"
  const char* trigger;        // Table 2 "Overload Triggering Condition"
};

inline constexpr int kNumCases = 16;

// Table 2, one entry per case.
const std::array<CaseInfo, kNumCases>& CaseCatalog();

struct CaseRunOptions {
  ControllerKind controller = ControllerKind::kNone;
  bool inject_culprits = true;  // false = non-overloaded normalization run
  double load_scale = 1.0;      // scales victim traffic
  double culprit_scale = 1.0;   // scales culprit arrival rates (Fig 12 sweeps)
  double slo_latency_increase = 0.20;
  TimeMicros duration = Seconds(20);
  TimeMicros warmup = Seconds(2);
  uint64_t seed = 1;
  bool cancellation_enabled = true;   // Fig 14: tracing without actions
  TimeMicros extra_request_cost = 0;  // Fig 14: modelled tracing cost
  // Minimum interval between consecutive cancellations (0 = library default).
  // §5.3 discusses the aggressiveness-vs-safety trade-off this controls.
  TimeMicros min_cancel_interval = 0;
  bool verbose = false;               // print cancellation events as they happen
  // Observability bundle (non-owning). When set, the run emits flight-recorder
  // events (run/window/decision/cancellation), per-app request metrics, and a
  // per-tick metric series into it; a post-mortem table is printed if the run
  // ends in SLO violation (unless post_mortem is false).
  Observability* obs = nullptr;
  bool post_mortem = true;
};

struct CaseResult {
  RunMetrics metrics;
  uint64_t controller_actions = 0;  // cancels / drops / penalties / shifts
  std::string controller_name;
  AtroposStats atropos_stats;       // populated for the Atropos controllers
};

// Builds the case's app + traffic, runs it to completion, returns metrics.
CaseResult RunCase(int case_id, const CaseRunOptions& options);

}  // namespace atropos

#endif  // SRC_WORKLOAD_CASES_H_
