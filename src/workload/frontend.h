// Experiment frontend: open-loop traffic generation, request lifecycle
// bookkeeping, and the client-side half of Atropos' fairness story (§4):
// culprit-cancelled requests are re-executed once resource availability is
// sustained, marked non-cancellable, and dropped if they outwait their SLO.

#ifndef SRC_WORKLOAD_FRONTEND_H_
#define SRC_WORKLOAD_FRONTEND_H_

#include <deque>
#include <limits>
#include <unordered_map>
#include <memory>
#include <vector>

#include "src/apps/app.h"
#include "src/atropos/controller.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/obs/obs.h"
#include "src/sim/coro.h"
#include "src/sim/sync.h"

namespace atropos {

// One arrival stream. Open-loop (Poisson at `qps`) by default; setting
// `closed_loop_clients` > 0 instead models that many virtual clients issuing
// back-to-back requests with `think_time` between them (the Sysbench model).
struct TrafficSpec {
  int type = 0;
  double qps = 0.0;
  uint64_t arg = 0;         // fixed request argument
  int arg_modulo = 0;       // if >0, arg = uniform in [0, arg_modulo)
  int client_class = 0;
  TimeMicros start = 0;
  TimeMicros end = std::numeric_limits<TimeMicros>::max();  // capped at run duration
  int closed_loop_clients = 0;
  TimeMicros think_time = 0;
};

// A single injected request (scan at t=5s, backup at t=20s, ...).
struct OneShotSpec {
  int type = 0;
  TimeMicros at = 0;
  uint64_t arg = 0;
  int client_class = 1;  // culprits default to the secondary class
  bool background = false;  // excluded from client-visible metrics
  bool non_cancellable = false;  // e.g. maintenance marked unsafe to kill
};

struct FrontendOptions {
  TimeMicros duration = Seconds(12);   // arrivals stop here
  TimeMicros warmup = Seconds(2);      // measurement starts here
  TimeMicros tick_window = Millis(100);
  bool retry_cancelled = true;
  TimeMicros max_retry_wait = Seconds(2.5);  // then the request is dropped (§4)
  uint64_t seed = 1;
};

struct RunMetrics {
  uint64_t arrivals = 0;      // measured-window arrivals
  uint64_t completed = 0;     // measured-window completions
  uint64_t cancelled = 0;     // culprit cancellations observed
  uint64_t retried = 0;       // re-executions issued
  uint64_t dropped = 0;       // victim drops + retry-deadline drops
  uint64_t rejected = 0;      // admission rejections
  uint64_t background_cancelled = 0;
  LatencyHistogram latency;   // completions only
  TimeMicros measured_time = 0;

  double ThroughputQps() const {
    return measured_time == 0
               ? 0.0
               : static_cast<double>(completed) / ToSeconds(measured_time);
  }
  double DropRate() const {
    return arrivals == 0
               ? 0.0
               : static_cast<double>(dropped + rejected) / static_cast<double>(arrivals);
  }
  TimeMicros P99() const { return latency.P99(); }
  TimeMicros P50() const { return latency.P50(); }
};

class Frontend {
 public:
  Frontend(Executor& executor, App& app, OverloadController& controller,
           FrontendOptions options);

  void AddTraffic(TrafficSpec spec) { traffic_.push_back(spec); }
  void AddOneShot(OneShotSpec spec) { oneshots_.push_back(spec); }

  // Request type of a submitted key (diagnostics; -1 if unknown).
  int TypeOfKey(uint64_t key) const {
    auto it = key_types_.find(key);
    return it == key_types_.end() ? -1 : it->second;
  }

  // Attach an observability bundle (non-owning): the app starts maintaining
  // per-request metrics, client-side cancellation aftermath (completion of a
  // cancel, retry, drop) lands in the flight recorder, and the tick loop
  // samples the metric series.
  void SetObservability(Observability* obs) {
    obs_ = obs;
    app_.SetMetrics(obs != nullptr ? &obs->metrics : nullptr);
  }

  // Runs the whole experiment to completion (drains the simulation) and
  // returns the measured-window metrics.
  RunMetrics Run();

 private:
  struct PendingRetry {
    AppRequest req;
    TimeMicros first_arrival = 0;
    bool background = false;
    TimeMicros enqueued = 0;
  };

  Coro GenerateTraffic(TrafficSpec spec, Rng rng);
  Coro ClosedLoopClient(TrafficSpec spec, Rng rng);
  Coro FireOneShot(OneShotSpec spec);
  Coro TickLoop();
  // Conservative re-execution scheduler (§4): retries run one at a time,
  // each gated on sustained resource availability, and are dropped once they
  // outwait max_retry_wait.
  Coro RetryWorker();

  void Submit(AppRequest req, TimeMicros first_arrival, bool background, bool is_retry,
              SimEvent* completion = nullptr);
  void OnDone(const AppRequest& req, OutcomeKind outcome, TimeMicros first_arrival,
              bool background);

  bool InMeasuredWindow(TimeMicros t) const {
    return t >= options_.warmup && t < options_.duration;
  }

  // Records one client-side event (cancel completed, retry, drop) if a
  // recorder is attached and enabled.
  void RecordClientEvent(ObsEventKind kind, const AppRequest& req, double value);

  Executor& executor_;
  App& app_;
  OverloadController& controller_;
  FrontendOptions options_;
  Observability* obs_ = nullptr;

  std::vector<TrafficSpec> traffic_;
  std::vector<OneShotSpec> oneshots_;
  uint64_t next_key_ = 1;
  std::unordered_map<uint64_t, int> key_types_;
  bool stop_ticking_ = false;
  std::deque<PendingRetry> retry_queue_;
  bool retry_worker_active_ = false;
  RunMetrics metrics_;
};

}  // namespace atropos

#endif  // SRC_WORKLOAD_FRONTEND_H_
