#include "src/workload/cases.h"

#include <cstdio>
#include <memory>

#include "src/apps/minidb.h"
#include "src/apps/minikv.h"
#include "src/apps/minisearch.h"
#include "src/apps/miniweb.h"

namespace atropos {

const std::array<CaseInfo, kNumCases>& CaseCatalog() {
  static const std::array<CaseInfo, kNumCases> kCatalog = {{
      {1, "minidb", "MySQL", "Synchronization", "Backup lock",
       "A subtle interaction causes backup queries to hold write locks for long time"},
      {2, "minidb", "MySQL", "Thread pool", "Innodb queue",
       "Slow queries monopolize the InnoDB queue, exceeding its concurrency limit"},
      {3, "minidb", "MySQL", "Synchronization", "Undo log",
       "Background purge task blocks causes contention on the undo log"},
      {4, "minidb", "MySQL", "Synchronization", "Table lock",
       "SELECT FOR UPDATE query blocks other clients' insert query"},
      {5, "minidb", "MySQL", "Memory", "Buffer pool",
       "Scan query monopolizes the buffer pool and causes contention with other queries"},
      {6, "minidb", "PostgreSQL", "Synchronization", "Table lock",
       "The write operation slows down the other query due to MVCC"},
      {7, "minidb", "PostgreSQL", "Synchronization", "Write ahead log",
       "The background WAL task causes group insertion and blocks other queries"},
      {8, "minidb", "PostgreSQL", "System", "System IO",
       "The vacuum process causes contention on IO and slows down other queries"},
      {9, "miniweb", "Apache", "Thread pool", "Thread pool",
       "Slow request blocks other clients' requests when the max client limit is reached"},
      {10, "minisearch", "Elasticsearch", "Memory", "Query cache",
       "A large search slows down other queries due to cache contention"},
      {11, "minisearch", "Elasticsearch", "Memory", "Buffer memory",
       "The nested aggregation exhausts heap memory causing frequent garbage collection"},
      {12, "minisearch", "Elasticsearch", "System", "CPU",
       "The long running queries cause CPU contention and slow down other requests"},
      {13, "minisearch", "Elasticsearch", "Synchronization", "Document lock",
       "A large update blocks other requests"},
      {14, "minisearch", "Solr", "Synchronization", "Index lock",
       "Complex boolean request slows down other requests"},
      {15, "minisearch", "Solr", "Thread pool", "Solr queue",
       "Nested range queries occupy thread pool and block other requests"},
      {16, "minikv", "etcd", "Synchronization", "Key-value lock",
       "Complex read query blocks other queries"},
  }};
  return kCatalog;
}

namespace {

// Late-bound control surface: the controller is constructed before the app
// (the app registers resources against the controller in its constructor).
class SurfaceProxy final : public ControlSurface {
 public:
  void Bind(ControlSurface* real) { real_ = real; }
  void CancelTask(uint64_t key, CancelReason reason) override {
    if (real_ != nullptr) {
      real_->CancelTask(key, reason);
    }
  }
  void ThrottleTask(uint64_t key, double factor) override {
    if (real_ != nullptr) {
      real_->ThrottleTask(key, factor);
    }
  }
  void SetTypeReservation(int request_type, int workers) override {
    if (real_ != nullptr) {
      real_->SetTypeReservation(request_type, workers);
    }
  }
  void SetClientShare(int client_class, double share) override {
    if (real_ != nullptr) {
      real_->SetClientShare(client_class, share);
    }
  }

 private:
  ControlSurface* real_ = nullptr;
};

struct CaseSetup {
  std::unique_ptr<App> app;
  std::vector<TrafficSpec> victims;
  std::vector<TrafficSpec> culprit_traffic;
  std::vector<OneShotSpec> culprit_shots;
  int darc_workers = 16;  // worker pool DARC partitions for this case
};

TrafficSpec Victims(int type, double qps, int arg_modulo = 0) {
  TrafficSpec spec;
  spec.type = type;
  spec.qps = qps;
  spec.arg_modulo = arg_modulo;
  spec.client_class = 0;
  return spec;
}

TrafficSpec Culprits(int type, double qps, uint64_t arg, TimeMicros start) {
  TrafficSpec spec;
  spec.type = type;
  spec.qps = qps;
  spec.arg = arg;
  spec.client_class = 1;
  spec.start = start;
  return spec;
}

OneShotSpec Shot(int type, TimeMicros at, uint64_t arg) {
  OneShotSpec spec;
  spec.type = type;
  spec.at = at;
  spec.arg = arg;
  spec.client_class = 1;
  return spec;
}

CaseSetup BuildCase(int case_id, Executor& executor, OverloadController* controller,
                    const CaseRunOptions& run) {
  CaseSetup setup;
  double scale = run.load_scale;
  const TimeMicros t3 = Seconds(3);

  switch (case_id) {
    case 1: {  // MySQL backup lock convoy
      MiniDbOptions opt;
      opt.use_table_locks = true;
      opt.scan_rows = 20'000'000;  // ~8 s scan at 400 us / krow
      opt.point_select_cost = 1000;
      opt.row_update_cost = 1000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbPointSelect, 600 * scale, 5),
                       Victims(kDbInsert, 300 * scale, 5)};
      // Sustained culprit stream (the paper injects scans at 5/10/15 s and a
      // backup at 20 s; over a longer run the pattern repeats): long scans on
      // random tables plus periodic backups whose queued exclusive locks
      // convoy everything behind them.
      TrafficSpec scans = Culprits(kDbTableScan, 0.4, 0, t3);
      scans.arg_modulo = 5;
      setup.culprit_traffic = {scans, Culprits(kDbBackup, 0.25, 0, Seconds(5))};
      break;
    }
    case 2: {  // InnoDB ticket queue
      MiniDbOptions opt;
      opt.use_tickets = true;
      opt.innodb_tickets = 8;
      opt.point_select_cost = 1000;
      opt.slow_query_cost = 5'000'000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbPointSelect, 2000 * scale)};
      setup.culprit_traffic = {Culprits(kDbSlowQuery, 2.0, 0, t3)};
      setup.darc_workers = 8;
      break;
    }
    case 3: {  // undo-log history pressure
      MiniDbOptions opt;
      opt.use_undo = true;
      opt.undo.purge_interval = Seconds(1);
      opt.undo.purge_batch = 8000;
      opt.undo.append_cost_per_1k_backlog = 150;
      opt.row_update_cost = 1000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbUndoWrite, 800 * scale)};
      // Deterministic first event plus a sparse stream.
      setup.culprit_shots = {Shot(kDbOldSnapshotRead, Seconds(4), Seconds(6))};
      setup.culprit_traffic = {Culprits(kDbOldSnapshotRead, 0.1, Seconds(6), Seconds(8))};
      break;
    }
    case 4: {  // SELECT FOR UPDATE
      MiniDbOptions opt;
      opt.use_table_locks = true;
      opt.sfu_hold_cost = 4'000'000;
      opt.row_update_cost = 1000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbInsert, 800 * scale, 2)};
      setup.culprit_traffic = {Culprits(kDbSelectForUpdate, 0.2, 0, t3)};
      break;
    }
    case 5: {  // buffer pool dump
      MiniDbOptions opt;
      opt.use_buffer_pool = true;
      opt.pool.capacity_pages = 1500;
      opt.pages_per_table = 8192;
      opt.hot_pages_per_table = 256;
      opt.point_select_cost = 50;
      opt.row_update_cost = 60;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbPointSelect, 1500 * scale, 5),
                       Victims(kDbRowUpdate, 500 * scale, 5)};
      TrafficSpec dumps = Culprits(kDbDumpQuery, 0.3, 0, t3);
      dumps.arg_modulo = 5;
      setup.culprit_traffic = {dumps};
      break;
    }
    case 6: {  // MVCC version chains
      MiniDbOptions opt;
      opt.use_mvcc = true;
      opt.mvcc.read_base_cost = 1000;
      opt.mvcc.prune_batch = 20000;
      opt.mvcc.prune_interval = Millis(500);
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbMvccRead, 1000 * scale)};
      setup.culprit_traffic = {Culprits(kDbMvccBulkWrite, 0.25, 60'000, t3)};
      break;
    }
    case 7: {  // WAL group commit
      MiniDbOptions opt;
      opt.use_wal = true;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbWalInsert, 800 * scale)};
      setup.culprit_traffic = {Culprits(kDbWalBulkInsert, 0.25, 20'000, t3)};
      break;
    }
    case 8: {  // vacuum I/O
      MiniDbOptions opt;
      opt.use_io = true;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniDb>(executor, controller, opt);
      setup.victims = {Victims(kDbIoQuery, 500 * scale)};
      setup.culprit_traffic = {Culprits(kDbVacuum, 0.2, 512 * 1024 * 1024, t3)};
      break;
    }
    case 9: {  // Apache MaxClients
      MiniWebOptions opt;
      opt.pool.max_clients = 32;
      opt.static_cost = 2000;
      opt.script_cost = 8'000'000;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniWeb>(executor, controller, opt);
      setup.victims = {Victims(kWebStatic, 800 * scale)};
      setup.culprit_traffic = {Culprits(kWebScript, 8.0, 0, t3)};
      setup.darc_workers = 32;
      break;
    }
    case 10: {  // query cache
      MiniSearchOptions opt;
      opt.use_cache = true;
      opt.cache.capacity_pages = 1024;
      opt.hot_entries = 512;
      opt.large_query_entries = 16384;
      opt.base_query_cost = 200;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchQuery, 1200 * scale)};
      setup.culprit_traffic = {Culprits(kSearchLargeQuery, 0.3, 0, t3)};
      break;
    }
    case 11: {  // heap / GC
      MiniSearchOptions opt;
      opt.use_heap = true;
      opt.heap.capacity_kb = 2560 * 1024;  // 2.5 GB: the 2 GB aggregation forces GC storms
      opt.heap.gc_threshold = 0.80;
      opt.query_alloc_kb = 256;
      opt.aggregation_alloc_kb = 2 * 1024 * 1024;
      opt.base_query_cost = 500;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchQuery, 800 * scale)};
      setup.culprit_shots = {Shot(kSearchAggregation, Seconds(4), 0)};
      setup.culprit_traffic = {Culprits(kSearchAggregation, 0.1, 0, Seconds(9))};
      break;
    }
    case 12: {  // CPU saturation
      MiniSearchOptions opt;
      opt.use_cpu = true;
      opt.cpu_cores = 8;
      opt.query_cpu = 2000;
      opt.long_query_cpu = 8'000'000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchQuery, 600 * scale)};
      setup.culprit_traffic = {Culprits(kSearchLongQuery, 3.0, 0, t3)};
      break;
    }
    case 13: {  // document lock
      MiniSearchOptions opt;
      opt.use_doc_locks = true;
      opt.doc_lock_stripes = 8;
      opt.doc_update_hold = 5'000'000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchDocRead, 1000 * scale, 8)};
      setup.culprit_traffic = {Culprits(kSearchDocUpdate, 0.25, 3, t3)};
      break;
    }
    case 14: {  // index lock convoy
      MiniSearchOptions opt;
      opt.use_index_lock = true;
      opt.index_read_cost = 1500;
      opt.boolean_query_hold = 6'000'000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchQuery, 1000 * scale)};
      setup.culprit_traffic = {Culprits(kSearchBooleanQuery, 0.2, 0, t3)};
      break;
    }
    case 15: {  // Solr search queue
      MiniSearchOptions opt;
      opt.use_queue = true;
      opt.search_threads = 16;
      opt.base_query_cost = 500;
      opt.range_query_cost = 5'000'000;
      opt.seed = run.seed;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniSearch>(executor, controller, opt);
      setup.victims = {Victims(kSearchQuery, 1000 * scale)};
      setup.culprit_traffic = {Culprits(kSearchRangeQuery, 3.0, 0, t3)};
      setup.darc_workers = 16;
      break;
    }
    case 16: {  // etcd keyspace lock
      MiniKvOptions opt;
      opt.store.point_op_cost = 1000;
      opt.store.scan_cost_per_key = 20;
      opt.extra_request_cost = run.extra_request_cost;
      setup.app = std::make_unique<MiniKv>(executor, controller, opt);
      setup.victims = {Victims(kKvPointOp, 500 * scale)};
      setup.culprit_traffic = {Culprits(kKvRangeRead, 0.5, 100'000, t3)};
      break;
    }
    default:
      break;
  }
  return setup;
}

// DARC's reservation pool size per case (the app's worker-pool capacity).
// Kept as a table so the controller can be constructed before the app.
int DarcWorkersFor(int case_id) {
  switch (case_id) {
    case 2:
      return 8;  // InnoDB tickets
    case 9:
      return 32;  // Apache MaxClients
    case 15:
      return 16;  // Solr search threads
    default:
      return 16;
  }
}

uint64_t ControllerActions(OverloadController* controller) {
  if (auto* atropos = dynamic_cast<AtroposRuntime*>(controller)) {
    return atropos->stats().cancels_issued;
  }
  if (auto* protego = dynamic_cast<Protego*>(controller)) {
    return protego->drops_issued();
  }
  if (auto* pbox = dynamic_cast<PBox*>(controller)) {
    return pbox->penalties_issued();
  }
  if (auto* parties = dynamic_cast<Parties*>(controller)) {
    return parties->adjustments();
  }
  if (auto* darc = dynamic_cast<Darc*>(controller)) {
    return static_cast<uint64_t>(darc->reserved_workers());
  }
  return 0;
}

}  // namespace

CaseResult RunCase(int case_id, const CaseRunOptions& options) {
  Executor executor;
  SurfaceProxy surface;

  ControllerParams params;
  params.slo_latency_increase = options.slo_latency_increase;
  params.cancellation_enabled = options.cancellation_enabled;
  params.total_workers = DarcWorkersFor(case_id);
  if (options.min_cancel_interval > 0) {
    params.min_cancel_interval = options.min_cancel_interval;
  }

  // The controller must exist before the app: the app registers its
  // resources against it in its constructor.
  auto controller = MakeController(options.controller, executor.clock(), &surface, params);
  CaseSetup setup = BuildCase(case_id, executor, controller.get(), options);
  if (setup.app == nullptr) {
    return {};
  }
  surface.Bind(setup.app.get());

  FrontendOptions fopt;
  fopt.duration = options.duration;
  fopt.warmup = options.warmup;
  fopt.seed = options.seed;
  fopt.tick_window = params.window;
  Frontend frontend(executor, *setup.app, *controller, fopt);
  Observability* obs = options.obs;
  if (obs != nullptr) {
    frontend.SetObservability(obs);
    FlightEvent start;
    start.time = executor.now();
    start.kind = ObsEventKind::kRunStart;
    start.value = case_id;
    start.label = "c" + std::to_string(case_id) + " " + std::string(setup.app->name()) + " " +
                  std::string(ControllerKindName(options.controller));
    obs->recorder.Record(std::move(start));
  }
  if (auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get()); runtime != nullptr) {
    if (obs != nullptr) {
      runtime->SetRecorder(&obs->recorder);
    }
    bool verbose = options.verbose;
    App* app = setup.app.get();
    // The observer fires right after the runtime records cancel_issued, so
    // AnnotateLast can name the victim's request type — context the control
    // loop itself does not have.
    runtime->SetCancelObserver(
        [&executor, &frontend, obs, app, verbose](uint64_t key, double score) {
          int type = frontend.TypeOfKey(key);
          if (obs != nullptr) {
            obs->recorder.AnnotateLast(
                ObsEventKind::kCancelIssued,
                type >= 0 ? std::string(app->RequestTypeName(type)) : "background");
          }
          if (verbose) {
            std::printf("  [%.2fs] cancel key=%llu type=%d score=%.3f\n",
                        ToSeconds(executor.now()), static_cast<unsigned long long>(key), type,
                        score);
          }
        });
  }
  for (const TrafficSpec& spec : setup.victims) {
    frontend.AddTraffic(spec);
  }
  if (options.inject_culprits) {
    for (TrafficSpec spec : setup.culprit_traffic) {
      spec.qps *= options.culprit_scale;
      frontend.AddTraffic(spec);
    }
    for (const OneShotSpec& spec : setup.culprit_shots) {
      frontend.AddOneShot(spec);
    }
  }

  CaseResult result;
  result.metrics = frontend.Run();
  auto* runtime = dynamic_cast<AtroposRuntime*>(controller.get());
  if (runtime != nullptr) {
    result.atropos_stats = runtime->stats();
  }
  result.controller_actions = ControllerActions(controller.get());
  result.controller_name = std::string(ControllerKindName(options.controller));

  if (obs != nullptr) {
    // SLO verdict: the calibrated detector's threshold against the measured
    // p99. Non-Atropos controllers have no detector; fall back to "overload
    // windows were observed" via the run's cancellation/drop activity.
    bool violated = false;
    if (runtime != nullptr && runtime->detector().calibrated()) {
      violated = result.metrics.P99() > runtime->detector().slo_latency();
    } else {
      violated = result.metrics.dropped + result.metrics.cancelled > 0;
    }
    Gauge* p99 = obs->metrics.GetGauge("run.c" + std::to_string(case_id) + ".p99_us");
    p99->Set(static_cast<double>(result.metrics.P99()));
    obs->metrics.GetGauge("run.c" + std::to_string(case_id) + ".throughput_qps")
        ->Set(result.metrics.ThroughputQps());

    FlightEvent end;
    end.time = executor.now();
    end.kind = ObsEventKind::kRunEnd;
    end.value = static_cast<double>(result.metrics.P99());
    end.label = violated ? "slo_violated" : "slo_met";
    obs->recorder.Record(std::move(end));

    if (violated && options.post_mortem) {
      std::printf("%s\n",
                  RenderPostMortem(obs->recorder.Snapshot(), obs->metrics.TakeSnapshot()).c_str());
    }
  }
  return result;
}

}  // namespace atropos
