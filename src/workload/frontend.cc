#include "src/workload/frontend.h"

#include <algorithm>

namespace atropos {

Frontend::Frontend(Executor& executor, App& app, OverloadController& controller,
                   FrontendOptions options)
    : executor_(executor), app_(app), controller_(controller), options_(options) {}

RunMetrics Frontend::Run() {
  Rng root(options_.seed);
  for (const TrafficSpec& spec : traffic_) {
    if (spec.closed_loop_clients > 0) {
      for (int i = 0; i < spec.closed_loop_clients; i++) {
        ClosedLoopClient(spec, root.Fork());
      }
    } else {
      GenerateTraffic(spec, root.Fork());
    }
  }
  for (const OneShotSpec& spec : oneshots_) {
    FireOneShot(spec);
  }
  TickLoop();

  // Phase 1: run through the experiment horizon.
  executor_.Run(options_.duration);
  // Phase 2: drain in-flight work (ticking continues so cancellations and
  // re-executions still happen), then stop background tasks.
  executor_.Run(options_.duration + options_.max_retry_wait + Seconds(2));
  stop_ticking_ = true;
  app_.Shutdown();
  executor_.Run();

  metrics_.measured_time = options_.duration - options_.warmup;
  return metrics_;
}

Coro Frontend::GenerateTraffic(TrafficSpec spec, Rng rng) {
  co_await BindExecutor{executor_};
  if (spec.qps <= 0.0) {
    co_return;
  }
  TimeMicros end = std::min(spec.end, options_.duration);
  double mean_gap = static_cast<double>(kMicrosPerSecond) / spec.qps;
  if (spec.start > 0) {
    co_await Delay{executor_, spec.start};
  }
  while (executor_.now() < end) {
    co_await Delay{executor_, static_cast<TimeMicros>(rng.NextExponential(mean_gap)) + 1};
    if (executor_.now() >= end) {
      break;
    }
    AppRequest req;
    req.key = next_key_++;
    req.type = spec.type;
    req.client_class = spec.client_class;
    req.arg = spec.arg_modulo > 0 ? rng.NextBounded(static_cast<uint64_t>(spec.arg_modulo))
                                  : spec.arg;
    Submit(req, executor_.now(), /*background=*/false, /*is_retry=*/false);
  }
}

// One virtual client: submit, wait for the response, think, repeat.
Coro Frontend::ClosedLoopClient(TrafficSpec spec, Rng rng) {
  co_await BindExecutor{executor_};
  TimeMicros end = std::min(spec.end, options_.duration);
  if (spec.start > 0) {
    co_await Delay{executor_, spec.start};
  }
  while (executor_.now() < end) {
    AppRequest req;
    req.key = next_key_++;
    req.type = spec.type;
    req.client_class = spec.client_class;
    req.arg = spec.arg_modulo > 0 ? rng.NextBounded(static_cast<uint64_t>(spec.arg_modulo))
                                  : spec.arg;
    SimEvent done(executor_);
    Submit(req, executor_.now(), /*background=*/false, /*is_retry=*/false, &done);
    co_await done.Wait();
    if (spec.think_time > 0) {
      co_await Delay{executor_,
                     static_cast<TimeMicros>(rng.NextExponential(
                         static_cast<double>(spec.think_time))) +
                         1};
    }
  }
}

Coro Frontend::FireOneShot(OneShotSpec spec) {
  co_await BindExecutor{executor_};
  co_await Delay{executor_, spec.at};
  AppRequest req;
  req.key = next_key_++;
  req.type = spec.type;
  req.client_class = spec.client_class;
  req.arg = spec.arg;
  req.non_cancellable = spec.non_cancellable;
  Submit(req, executor_.now(), spec.background, /*is_retry=*/false);
}

Coro Frontend::TickLoop() {
  co_await BindExecutor{executor_};
  while (!stop_ticking_) {
    co_await Delay{executor_, options_.tick_window};
    if (stop_ticking_) {
      break;
    }
    controller_.Tick();
    if (obs_ != nullptr && executor_.now() <= options_.duration) {
      obs_->series.Sample(executor_.now(),
                          {static_cast<double>(metrics_.completed),
                           static_cast<double>(metrics_.cancelled),
                           static_cast<double>(metrics_.dropped),
                           static_cast<double>(metrics_.latency.P99()) / 1000.0});
    }
  }
}

void Frontend::RecordClientEvent(ObsEventKind kind, const AppRequest& req, double value) {
  if (obs_ == nullptr || !obs_->recorder.enabled()) {
    return;
  }
  FlightEvent ev;
  ev.time = executor_.now();
  ev.kind = kind;
  ev.key = req.key;
  ev.value = value;
  ev.label = std::string(app_.RequestTypeName(req.type));
  obs_->recorder.Record(std::move(ev));
}

void Frontend::Submit(AppRequest req, TimeMicros first_arrival, bool background, bool is_retry,
                      SimEvent* completion) {
  TimeMicros now = executor_.now();
  if (!background && !is_retry && InMeasuredWindow(now)) {
    metrics_.arrivals++;
  }
  // Admission-control baselines may shed the request up front.
  if (!background && !controller_.AdmitRequest(req.key, req.type, req.client_class)) {
    if (InMeasuredWindow(now)) {
      metrics_.dropped++;
    }
    if (completion != nullptr) {
      completion->Set();
    }
    return;
  }
  key_types_[req.key] = req.type;
  controller_.OnTaskRegistered(req.key, background, !req.non_cancellable);
  if (!background) {
    controller_.OnRequestStart(req.key, req.type, req.client_class);
  }
  app_.Start(req, [this, first_arrival, background, completion](const AppRequest& r,
                                                                OutcomeKind outcome) {
    OnDone(r, outcome, first_arrival, background);
    if (completion != nullptr) {
      completion->Set();
    }
  });
}

void Frontend::OnDone(const AppRequest& req, OutcomeKind outcome, TimeMicros first_arrival,
                      bool background) {
  TimeMicros now = executor_.now();
  TimeMicros latency = now > first_arrival ? now - first_arrival : 0;
  if (!background) {
    controller_.OnRequestEnd(req.key, latency, req.type, req.client_class);
  }
  controller_.OnTaskFreed(req.key);

  bool measured = InMeasuredWindow(first_arrival);
  switch (outcome) {
    case OutcomeKind::kCompleted:
      // Throughput/latency track the SLO-bearing workload (class 0), counting
      // completions that land within the run horizon: requests that only
      // finish during the post-run drain did not contribute to the
      // throughput the clients observed, and a long analytics request
      // completing is not a latency sample of the primary workload.
      if (!background && measured && now < options_.duration && req.client_class == 0) {
        metrics_.completed++;
        metrics_.latency.Record(latency);
      }
      break;
    case OutcomeKind::kCancelled: {
      // The request observed its cancellation and unwound; the flip side of
      // the runtime's cancel_issued event, with the request type named.
      RecordClientEvent(ObsEventKind::kCancelCompleted, req, ToSeconds(latency));
      if (background) {
        metrics_.background_cancelled++;
        // Background tasks are guaranteed re-execution after their waiting
        // threshold (§4); modelled by the same retry path.
      }
      if (!background && measured) {
        metrics_.cancelled++;
      }
      if (options_.retry_cancelled) {
        retry_queue_.push_back(PendingRetry{req, first_arrival, background, now});
        if (!retry_worker_active_) {
          retry_worker_active_ = true;
          RetryWorker();
        }
      } else if (!background && measured) {
        metrics_.dropped++;
      }
      break;
    }
    case OutcomeKind::kDropped:
      RecordClientEvent(ObsEventKind::kTaskDropped, req, ToSeconds(latency));
      if (!background && measured) {
        metrics_.dropped++;
      }
      break;
    case OutcomeKind::kRejected:
      if (!background && measured) {
        metrics_.rejected++;
      }
      break;
  }
}

// Retries are serialized: re-executed tasks are non-cancellable (§4), so
// launching several at once could recreate the exact overload that was just
// resolved with no cancellable culprit left. One at a time, each gated on
// sustained availability, keeps re-execution safe.
Coro Frontend::RetryWorker() {
  co_await BindExecutor{executor_};
  while (!retry_queue_.empty()) {
    PendingRetry pending = retry_queue_.front();
    retry_queue_.pop_front();

    bool dropped = false;
    // Wait for sustained resource availability (§4).
    while (!controller_.ReexecutionRecommended()) {
      co_await Delay{executor_, options_.tick_window};
      if (executor_.now() - pending.enqueued > options_.max_retry_wait) {
        dropped = true;
        break;
      }
    }
    if (!dropped && executor_.now() - pending.enqueued > options_.max_retry_wait) {
      dropped = true;
    }
    if (dropped) {
      // The request can no longer meet its SLO: drop it (§4).
      RecordClientEvent(ObsEventKind::kTaskDropped, pending.req,
                        ToSeconds(executor_.now() - pending.enqueued));
      if (!pending.background && InMeasuredWindow(pending.first_arrival)) {
        metrics_.dropped++;
      }
      continue;
    }
    // Re-execute under the same key: the runtime remembers cancelled keys and
    // marks the re-registration non-cancellable (§4: cancelled at most once).
    AppRequest retry = pending.req;
    retry.non_cancellable = true;
    metrics_.retried++;
    RecordClientEvent(ObsEventKind::kTaskRetried, retry,
                      ToSeconds(executor_.now() - pending.enqueued));
    SimEvent done(executor_);
    Submit(retry, pending.first_arrival, pending.background, /*is_retry=*/true, &done);
    co_await done.Wait();
  }
  retry_worker_active_ = false;
}

}  // namespace atropos
