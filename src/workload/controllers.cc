#include "src/workload/controllers.h"

namespace atropos {

std::string_view ControllerKindName(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kNone:
      return "none";
    case ControllerKind::kAtropos:
      return "atropos";
    case ControllerKind::kAtroposHeuristic:
      return "atropos-heuristic";
    case ControllerKind::kAtroposCurrentUsage:
      return "atropos-current-usage";
    case ControllerKind::kProtego:
      return "protego";
    case ControllerKind::kPBox:
      return "pbox";
    case ControllerKind::kDarc:
      return "darc";
    case ControllerKind::kParties:
      return "parties";
  }
  return "unknown";
}

namespace {

std::unique_ptr<AtroposRuntime> MakeAtropos(Clock* clock, ControlSurface* surface,
                                            const ControllerParams& params, PolicyKind policy) {
  AtroposConfig config;
  config.window = params.window;
  config.slo_latency_increase = params.slo_latency_increase;
  config.baseline_p99 = params.baseline_p99;
  config.policy = policy;
  config.cancellation_enabled = params.cancellation_enabled;
  config.timestamp_mode = params.timestamp_mode;
  config.min_cancel_interval = params.min_cancel_interval;
  config.calibration_windows = 20;  // 1 s of 50 ms windows
  // "Sustained resource availability" (§4) means a full 3 s of calm — longer
  // than the frontend's retry deadline, so heavyweight culprits re-execute
  // only into genuinely idle periods (or are dropped).
  config.reexec_calm_windows = 60;
  // The Fig-13 ablation variants differ only in the injected SelectionPolicy
  // stage; detection and estimation are the paper's pipeline in all three.
  DecisionPipeline pipeline;
  pipeline.detection = std::make_unique<BreakwaterDetectionStage>(config);
  pipeline.estimation = std::make_unique<GainEstimationStage>(config);
  pipeline.selection = DecisionPipeline::MakeSelectionPolicy(policy);
  auto runtime = std::make_unique<AtroposRuntime>(clock, config, std::move(pipeline));
  runtime->SetControlSurface(surface);
  return runtime;
}

}  // namespace

std::unique_ptr<OverloadController> MakeController(ControllerKind kind, Clock* clock,
                                                   ControlSurface* surface,
                                                   const ControllerParams& params) {
  switch (kind) {
    case ControllerKind::kNone:
      return std::make_unique<NullController>();
    case ControllerKind::kAtropos:
      return MakeAtropos(clock, surface, params, PolicyKind::kMultiObjective);
    case ControllerKind::kAtroposHeuristic:
      return MakeAtropos(clock, surface, params, PolicyKind::kHeuristic);
    case ControllerKind::kAtroposCurrentUsage:
      return MakeAtropos(clock, surface, params, PolicyKind::kCurrentUsage);
    case ControllerKind::kProtego: {
      ProtegoConfig config;
      config.window = params.window;
      config.baseline_p99 = params.baseline_p99;
      config.slo_latency_increase = params.slo_latency_increase;
      config.calibration_windows = 20;
      return std::make_unique<Protego>(clock, surface, config);
    }
    case ControllerKind::kPBox: {
      PBoxConfig config;
      config.window = params.window;
      config.baseline_p99 = params.baseline_p99;
      config.slo_latency_increase = params.slo_latency_increase;
      config.calibration_windows = 20;
      return std::make_unique<PBox>(clock, surface, config);
    }
    case ControllerKind::kDarc: {
      DarcConfig config;
      config.window = params.window;
      config.total_workers = params.total_workers;
      return std::make_unique<Darc>(clock, surface, config);
    }
    case ControllerKind::kParties: {
      PartiesConfig config;
      config.window = params.window;
      config.baseline_p99 = params.baseline_p99;
      config.slo_latency_increase = params.slo_latency_increase;
      config.calibration_windows = 20;
      return std::make_unique<Parties>(clock, surface, config);
    }
  }
  return std::make_unique<NullController>();
}

}  // namespace atropos
