// Sim-vs-live digest cross-check.
//
// A live run and its simulator counterpart never produce identical decision
// streams: wall-clock jitter moves window boundaries, scheduling noise moves
// contention scores, and the live run's arrival sequence is a different
// Poisson draw. What *must* agree — or the live mode is not executing the
// paper's control loop — is the shape of the decisions:
//
//   1. both detect overload (or both don't),
//   2. both cancel (or neither does), at rates within a tolerance band,
//   3. both pick the same dominant culprit request type,
//   4. the resource class the simulator blames is among the classes the live
//      estimator flagged,
//   5. the first cancellation lands at a similar fraction of the run.
//
// NormalizeDecisions folds a FlightRecorder snapshot into a DecisionDigest —
// counts, label histograms, and run-relative fractions instead of absolute
// timestamps — and CrossCheckDigests compares two digests under explicit
// ToleranceBands. Tolerance rules are documented in DESIGN.md §14.

#ifndef SRC_LIVE_DECISION_DIGEST_H_
#define SRC_LIVE_DECISION_DIGEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/events.h"

namespace atropos {

struct DecisionDigest {
  double duration_s = 0.0;

  uint64_t windows = 0;            // kWindowClosed
  uint64_t overload_entered = 0;   // kOverloadEntered
  uint64_t snapshots = 0;          // kContentionSnapshot
  uint64_t policy_decisions = 0;   // kPolicyDecision
  uint64_t cancels = 0;            // kCancelIssued

  // kCancelIssued label histogram (labels are request-type names via the
  // cancel observer's AnnotateLast).
  std::map<std::string, uint64_t> cancels_by_label;

  // Resource classes that showed overloaded=true in any contention snapshot.
  std::map<std::string, uint64_t> overloaded_classes;

  // Time of the first cancellation as a fraction of the run ([0,1]; <0 when
  // no cancel was issued).
  double first_cancel_frac = -1.0;

  double CancelRate() const { return duration_s > 0 ? cancels / duration_s : 0.0; }
  // Most frequently cancelled request type ("" when no cancels).
  std::string DominantCancelLabel() const;
  // Most frequently overloaded resource class ("" when none flagged).
  std::string DominantOverloadedClass() const;
};

DecisionDigest NormalizeDecisions(const std::vector<FlightEvent>& events, TimeMicros duration);

// Tolerance bands for wall-clock jitter between a live run and its simulator
// counterpart. Defaults are the documented DESIGN.md §14 values.
struct ToleranceBands {
  // Cancel rates may differ by up to this multiplicative factor...
  double cancel_rate_ratio = 4.0;
  // ...or by this absolute count, whichever is more permissive (small runs
  // issue a handful of cancels, where one extra cancel is a big ratio).
  uint64_t cancel_slack = 3;
  // First cancellation must land within this fraction-of-run distance.
  double first_cancel_frac_slack = 0.5;
  bool require_overload_match = true;
  bool require_culprit_match = true;
  // Sim's dominant overloaded class must appear among live's flagged classes.
  bool require_resource_class = true;
};

struct CrossCheckReport {
  struct Check {
    std::string name;
    bool pass = false;
    std::string detail;
  };
  std::vector<Check> checks;
  bool pass = false;

  std::string Render() const;
};

CrossCheckReport CrossCheckDigests(const DecisionDigest& live, const DecisionDigest& sim,
                                   const ToleranceBands& bands);

}  // namespace atropos

#endif  // SRC_LIVE_DECISION_DIGEST_H_
