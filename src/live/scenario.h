// Overload scenario shapes shared by the live run and its simulator
// counterpart.
//
// A scenario fixes the workload shape once — app, worker count, victim
// streams, culprit injection pattern, costs, and the AtroposConfig — and both
// execution modes are derived from it: the live side turns the shape into
// LoadGen specs against real threads, the sim side into Frontend TrafficSpec /
// OneShotSpec against the coroutine apps with the *same* costs and the same
// runtime configuration. That shared origin is what makes the digest
// cross-check meaningful: any divergence is execution-mode behavior, not a
// configuration delta.

#ifndef SRC_LIVE_SCENARIO_H_
#define SRC_LIVE_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/atropos/config.h"
#include "src/atropos/stats.h"
#include "src/live/decision_digest.h"
#include "src/live/live_app.h"
#include "src/live/loadgen.h"
#include "src/workload/frontend.h"

namespace atropos {

enum class LiveScenarioKind {
  // miniweb: a wave of slow scripts lands at once and exhausts the worker
  // pool (the Apache MaxClients shape, sim case c9 compressed into a burst).
  kCulpritBurst = 0,
  // miniweb: a continuous low-rate script stream from a second tenant keeps
  // the pool partially occupied for the rest of the run.
  kNoisyNeighbor = 1,
  // minikv: large range reads hold the real keyspace mutex for seconds and
  // convoy every point op behind it (the etcd shape, sim case c16).
  kLockConvoy = 2,
};

std::string_view ScenarioName(LiveScenarioKind kind);
bool ParseScenario(std::string_view name, LiveScenarioKind* out);

struct LiveScenario {
  LiveScenarioKind kind = LiveScenarioKind::kCulpritBurst;
  bool web = true;  // true: LiveMiniWeb / MiniWeb, false: LiveMiniKv / MiniKv

  size_t workers = 8;
  TimeMicros duration = Seconds(8);
  TimeMicros warmup = Seconds(1);
  uint64_t seed = 1;

  LiveMiniWebOptions web_options;
  LiveMiniKvOptions kv_options;

  // Live side (LoadGen).
  std::vector<OpenLoopSpec> open_streams;
  std::vector<ClosedLoopSpec> closed_streams;
  std::vector<BurstSpec> bursts;
  size_t queue_capacity = 512;

  // Shared runtime configuration (baseline_p99 set explicitly so neither
  // mode depends on calibration racing the culprit injection).
  AtroposConfig config;
};

LiveScenario MakeScenario(LiveScenarioKind kind, size_t workers, TimeMicros duration,
                          double load_scale, uint64_t seed);

struct SimCounterpartResult {
  RunMetrics metrics;
  AtroposStats stats;
  DecisionDigest digest;
};

// Runs the scenario's simulator counterpart: the same shape on the coroutine
// apps, an AtroposRuntime built from the same config, decisions captured in a
// flight recorder and folded into a digest.
SimCounterpartResult RunSimCounterpart(const LiveScenario& scenario);

}  // namespace atropos

#endif  // SRC_LIVE_SCENARIO_H_
