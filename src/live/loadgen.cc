#include "src/live/loadgen.h"

#include <algorithm>
#include <chrono>

namespace atropos {

namespace {
constexpr TimeMicros kSleepSlice = Millis(5);
}  // namespace

void LoadGen::Start(TimeMicros deadline) {
  threads_.reserve(open_specs_.size() + burst_specs_.size() +
                   [this] {
                     size_t n = 0;
                     for (const ClosedLoopSpec& s : closed_specs_) n += s.clients;
                     return n;
                   }());
  for (const OpenLoopSpec& spec : open_specs_) {
    // Each stream gets an independently seeded generator so pacing draws
    // don't serialize on a shared Rng.
    threads_.emplace_back([this, spec, deadline, rng = rng_.Fork()]() mutable {
      RunOpenLoop(spec, deadline, rng);
    });
  }
  for (const ClosedLoopSpec& spec : closed_specs_) {
    for (size_t i = 0; i < spec.clients; i++) {
      threads_.emplace_back([this, spec, deadline] { RunClosedClient(spec, deadline); });
    }
  }
  for (const BurstSpec& spec : burst_specs_) {
    threads_.emplace_back([this, spec, deadline] { RunBurst(spec, deadline); });
  }
}

void LoadGen::Join() {
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
}

bool LoadGen::SubmitOne(int type, uint64_t arg, int client_class, ClientWaiter* waiter) {
  LiveRequest req;
  req.key = MakeLiveKey(type, seq_.fetch_add(1, std::memory_order_relaxed));
  req.type = type;
  req.arg = arg;
  req.client_class = client_class;
  req.waiter = waiter;
  arrivals_.fetch_add(1, std::memory_order_relaxed);
  return server_->Submit(req);
}

void LoadGen::SleepUntil(TimeMicros until, TimeMicros deadline) {
  const TimeMicros capped = std::min(until, deadline);
  while (true) {
    const TimeMicros now = clock_->NowMicros();
    if (now >= capped) {
      return;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(std::min<TimeMicros>(capped - now, kSleepSlice)));
  }
}

void LoadGen::RunOpenLoop(OpenLoopSpec spec, TimeMicros deadline, Rng rng) {
  if (spec.qps <= 0) {
    return;
  }
  const TimeMicros end = spec.end > 0 ? std::min(spec.end, deadline) : deadline;
  const double mean_gap_us = 1e6 / spec.qps;
  SleepUntil(spec.start, deadline);
  // Schedule against ideal arrival times rather than "now + gap": a stalled
  // Submit (queue mutex held during a drain) doesn't depress the offered rate.
  TimeMicros next = std::max(spec.start, clock_->NowMicros());
  while (clock_->NowMicros() < end) {
    SubmitOne(spec.type, spec.arg, spec.client_class, /*waiter=*/nullptr);
    next += static_cast<TimeMicros>(rng.NextExponential(mean_gap_us));
    if (next >= end) {
      break;
    }
    SleepUntil(next, end);
  }
}

void LoadGen::RunClosedClient(ClosedLoopSpec spec, TimeMicros deadline) {
  const TimeMicros end = spec.end > 0 ? std::min(spec.end, deadline) : deadline;
  SleepUntil(spec.start, deadline);
  while (clock_->NowMicros() < end) {
    ClientWaiter waiter;
    if (SubmitOne(spec.type, spec.arg, spec.client_class, &waiter)) {
      // Safe to block indefinitely: every accepted request is signalled,
      // including shutdown sheds — live_run stops the server before joining.
      const LiveOutcome out = waiter.Wait();
      if (out == LiveOutcome::kShed) {
        return;  // server is shutting down
      }
    } else {
      // Shed at submit; back off a little instead of hammering a full queue.
      SleepUntil(clock_->NowMicros() + Millis(2), end);
    }
    if (spec.think_time > 0) {
      SleepUntil(clock_->NowMicros() + spec.think_time, end);
    }
  }
}

void LoadGen::RunBurst(BurstSpec spec, TimeMicros deadline) {
  SleepUntil(spec.at, deadline);
  if (clock_->NowMicros() >= deadline) {
    return;
  }
  for (size_t i = 0; i < spec.count; i++) {
    SubmitOne(spec.type, spec.arg, spec.client_class, /*waiter=*/nullptr);
  }
}

}  // namespace atropos
