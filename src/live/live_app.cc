#include "src/live/live_app.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/atropos/capi.h"

namespace atropos {

namespace {

void SleepMicros(TimeMicros us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

// ---- LiveMiniWeb -----------------------------------------------------------

std::string_view LiveMiniWeb::RequestTypeName(int type) const {
  switch (type) {
    case 0:
      return "static";
    case 1:
      return "script";
    default:
      return "request";
  }
}

LiveOutcome LiveMiniWeb::Execute(const LiveRequest& req, const WaitContext& ctx) {
  if (req.type == culprit_type()) {
    return RunScript(req, ctx);
  }
  SleepMicros(options_.static_cost);
  return LiveOutcome::kOk;
}

LiveOutcome LiveMiniWeb::RunScript(const LiveRequest& req, const WaitContext& ctx) {
  // A PHP-style handler: options_.script_cost of wall-clock work in slices,
  // polling the keyed cancel signal between slices (§5.2's thread-level
  // cancel) and reporting GetNext-style progress (§3.4).
  const TimeMicros total = req.arg != 0 ? req.arg : options_.script_cost;
  TimeMicros done = 0;
  LiveOutcome out = LiveOutcome::kOk;
  while (done < total) {
    if (ctx.signal.Raised()) {
      out = LiveOutcome::kCancelled;
      break;
    }
    const TimeMicros slice = std::min<TimeMicros>(options_.script_slice, total - done);
    SleepMicros(slice);
    done += slice;
    reportProgress(done, total);
  }
  return out;
}

// ---- LiveMiniKv ------------------------------------------------------------

std::string_view LiveMiniKv::RequestTypeName(int type) const {
  switch (type) {
    case 0:
      return "point_op";
    case 1:
      return "range_read";
    default:
      return "request";
  }
}

LiveOutcome LiveMiniKv::Execute(const LiveRequest& req, const WaitContext& ctx) {
  if (req.type == culprit_type()) {
    return RangeRead(req, ctx);
  }
  return PointOp(req, ctx);
}

LiveOutcome LiveMiniKv::PointOp(const LiveRequest& req, const WaitContext& ctx) {
  // Bracketing the acquisition (slowByResourceBegin/End) makes the stall
  // visible to the estimator *while* the op is convoyed behind a long range
  // read — the in-progress-wait extension the capi header motivates.
  slowByResourceBegin(CApiResourceType::LOCK);
  // With a cell the wait is abortable in place; without one (checkpoint-
  // polling baseline) the signal is withheld too, reproducing the old
  // uninterruptible std::mutex exactly — a point op never polled it.
  const SyncOutcome got = keyspace_mu_.Acquire(
      req.key, ctx.cell, ctx.cell != nullptr ? &ctx.signal : nullptr);
  slowByResourceEnd(CApiResourceType::LOCK);
  if (got == SyncOutcome::kCancelled) {
    return LiveOutcome::kCancelled;
  }
  getResource(1, CApiResourceType::LOCK);
  SleepMicros(options_.point_op_cost);
  freeResource(1, CApiResourceType::LOCK);
  keyspace_mu_.Release();
  return LiveOutcome::kOk;
}

LiveOutcome LiveMiniKv::RangeRead(const LiveRequest& req, const WaitContext& ctx) {
  const uint64_t span = req.arg != 0 ? req.arg : options_.default_range_span;
  // Keys scanned per lock hold: the whole span by default, or a yield chunk
  // when the scan periodically releases the lock (scan_yield_every).
  const uint64_t chunk_keys = options_.scan_yield_every == 0
                                  ? span
                                  : options_.scan_yield_every * options_.scan_batch;
  uint64_t scanned = 0;
  while (scanned < span) {
    slowByResourceBegin(CApiResourceType::LOCK);
    const SyncOutcome got = keyspace_mu_.Acquire(
        req.key, ctx.cell, ctx.cell != nullptr ? &ctx.signal : nullptr);
    slowByResourceEnd(CApiResourceType::LOCK);
    if (got == SyncOutcome::kCancelled) {
      // Aborted in place while parked (initial acquire or a re-acquire after
      // a yield): the scan leaves the lock queue without ever holding it.
      return LiveOutcome::kCancelled;
    }
    getResource(1, CApiResourceType::LOCK);
    // Scan in batches while holding the keyspace lock — the c16 convoy. Each
    // batch boundary is a cancellation checkpoint; an aborted scan releases
    // the lock within one batch, which is exactly the mitigation the paper's
    // targeted cancellation buys.
    const uint64_t chunk_end = std::min<uint64_t>(span, scanned + chunk_keys);
    LiveOutcome out = LiveOutcome::kOk;
    while (scanned < chunk_end) {
      if (ctx.signal.Raised()) {
        out = LiveOutcome::kCancelled;
        break;
      }
      const uint64_t batch = std::min<uint64_t>(options_.scan_batch, chunk_end - scanned);
      SleepMicros(batch * options_.scan_cost_per_key);
      scanned += batch;
      reportProgress(scanned, span);
    }
    freeResource(1, CApiResourceType::LOCK);
    keyspace_mu_.Release();
    if (out != LiveOutcome::kOk) {
      return out;
    }
  }
  return LiveOutcome::kOk;
}

}  // namespace atropos
