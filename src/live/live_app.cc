#include "src/live/live_app.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/atropos/capi.h"

namespace atropos {

namespace {

void SleepMicros(TimeMicros us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace

// ---- LiveMiniWeb -----------------------------------------------------------

std::string_view LiveMiniWeb::RequestTypeName(int type) const {
  switch (type) {
    case 0:
      return "static";
    case 1:
      return "script";
    default:
      return "request";
  }
}

LiveOutcome LiveMiniWeb::Execute(const LiveRequest& req, const std::atomic<bool>& cancel) {
  if (req.type == culprit_type()) {
    return RunScript(req, cancel);
  }
  SleepMicros(options_.static_cost);
  return LiveOutcome::kOk;
}

LiveOutcome LiveMiniWeb::RunScript(const LiveRequest& req, const std::atomic<bool>& cancel) {
  // A PHP-style handler: options_.script_cost of wall-clock work in slices,
  // polling the thread-cancellation flag between slices (§5.2's thread-level
  // cancel) and reporting GetNext-style progress (§3.4).
  const TimeMicros total = req.arg != 0 ? req.arg : options_.script_cost;
  TimeMicros done = 0;
  LiveOutcome out = LiveOutcome::kOk;
  while (done < total) {
    if (cancel.load(std::memory_order_acquire)) {
      out = LiveOutcome::kCancelled;
      break;
    }
    const TimeMicros slice = std::min<TimeMicros>(options_.script_slice, total - done);
    SleepMicros(slice);
    done += slice;
    reportProgress(done, total);
  }
  return out;
}

// ---- LiveMiniKv ------------------------------------------------------------

std::string_view LiveMiniKv::RequestTypeName(int type) const {
  switch (type) {
    case 0:
      return "point_op";
    case 1:
      return "range_read";
    default:
      return "request";
  }
}

LiveOutcome LiveMiniKv::Execute(const LiveRequest& req, const std::atomic<bool>& cancel) {
  if (req.type == culprit_type()) {
    return RangeRead(req, cancel);
  }
  return PointOp(req);
}

LiveOutcome LiveMiniKv::PointOp(const LiveRequest& req) {
  // Bracketing the acquisition (slowByResourceBegin/End) makes the stall
  // visible to the estimator *while* the op is convoyed behind a long range
  // read — the in-progress-wait extension the capi header motivates.
  slowByResourceBegin(CApiResourceType::LOCK);
  std::unique_lock<std::mutex> lock(keyspace_mu_);
  slowByResourceEnd(CApiResourceType::LOCK);
  getResource(1, CApiResourceType::LOCK);
  SleepMicros(options_.point_op_cost);
  freeResource(1, CApiResourceType::LOCK);
  return LiveOutcome::kOk;
}

LiveOutcome LiveMiniKv::RangeRead(const LiveRequest& req, const std::atomic<bool>& cancel) {
  const uint64_t span = req.arg != 0 ? req.arg : options_.default_range_span;
  slowByResourceBegin(CApiResourceType::LOCK);
  std::unique_lock<std::mutex> lock(keyspace_mu_);
  slowByResourceEnd(CApiResourceType::LOCK);
  getResource(1, CApiResourceType::LOCK);
  // Scan in batches while holding the keyspace lock — the c16 convoy. Each
  // batch boundary is a cancellation checkpoint; an aborted scan releases
  // the lock within one batch, which is exactly the mitigation the paper's
  // targeted cancellation buys.
  uint64_t scanned = 0;
  LiveOutcome out = LiveOutcome::kOk;
  while (scanned < span) {
    if (cancel.load(std::memory_order_acquire)) {
      out = LiveOutcome::kCancelled;
      break;
    }
    const uint64_t batch = std::min<uint64_t>(options_.scan_batch, span - scanned);
    SleepMicros(batch * options_.scan_cost_per_key);
    scanned += batch;
    reportProgress(scanned, span);
  }
  freeResource(1, CApiResourceType::LOCK);
  return out;
}

}  // namespace atropos
