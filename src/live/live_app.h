// Live request handlers: miniweb and minikv re-expressed as code running on
// real OS threads.
//
// Each handler executes synchronously on a worker thread, burning genuine
// wall-clock time and contending on genuine synchronization (minikv's
// keyspace lock is a real std::mutex). Instrumentation goes through the
// paper's C API exactly as an integrated application's would: the worker
// establishes the thread's current cancellable before calling Execute, so
// getResource / freeResource / slowByResourceBegin/End / reportProgress
// attribute to the right task via thread identity (paper §3.2).
//
// Request type enum values and names deliberately match the simulator apps
// (MiniWebRequestType / MiniKvRequestType, "static"/"script",
// "point_op"/"range_read") so the sim-vs-live digest cross-check can compare
// culprit picks by label.

#ifndef SRC_LIVE_LIVE_APP_H_
#define SRC_LIVE_LIVE_APP_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "src/common/clock.h"
#include "src/live/live_request.h"

namespace atropos {

class LiveApp {
 public:
  virtual ~LiveApp() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view RequestTypeName(int type) const = 0;
  // The scenario's steady fast traffic / injected heavy traffic.
  virtual int victim_type() const = 0;
  virtual int culprit_type() const = 0;

  // Runs the request to completion on the calling worker thread. `cancel` is
  // the worker's CancelBoard flag; long handlers poll it at checkpoints and
  // return kCancelled when it is raised.
  virtual LiveOutcome Execute(const LiveRequest& req, const std::atomic<bool>& cancel) = 0;
};

// Apache MaxClients analogue (sim case c9): fast static serves vs. scripts
// that hold a worker thread for a long time. The "pool" under contention is
// the worker-thread pool itself; the server attributes queue waits and
// worker holds against the capi QUEUE resource.
struct LiveMiniWebOptions {
  TimeMicros static_cost = 2000;      // 2 ms static file
  TimeMicros script_cost = 1'500'000;  // 1.5 s script
  TimeMicros script_slice = 5000;     // cancellation-checkpoint granularity
};

class LiveMiniWeb final : public LiveApp {
 public:
  explicit LiveMiniWeb(LiveMiniWebOptions options) : options_(options) {}

  std::string_view name() const override { return "live_miniweb"; }
  std::string_view RequestTypeName(int type) const override;
  int victim_type() const override { return 0; }   // kWebStatic
  int culprit_type() const override { return 1; }  // kWebScript

  LiveOutcome Execute(const LiveRequest& req, const std::atomic<bool>& cancel) override;

 private:
  LiveOutcome RunScript(const LiveRequest& req, const std::atomic<bool>& cancel);

  LiveMiniWebOptions options_;
};

// etcd keyspace-lock analogue (sim case c16): point ops and large range
// reads serialize on one real mutex. A range read holds it for seconds,
// convoying every point op behind it; cancellation releases the lock at the
// next scan-batch checkpoint.
struct LiveMiniKvOptions {
  TimeMicros point_op_cost = 1000;   // 1 ms under the lock
  TimeMicros scan_cost_per_key = 20;
  uint64_t scan_batch = 200;         // keys per cancellation checkpoint
  uint64_t default_range_span = 50'000;
};

class LiveMiniKv final : public LiveApp {
 public:
  explicit LiveMiniKv(LiveMiniKvOptions options) : options_(options) {}

  std::string_view name() const override { return "live_minikv"; }
  std::string_view RequestTypeName(int type) const override;
  int victim_type() const override { return 0; }   // kKvPointOp
  int culprit_type() const override { return 1; }  // kKvRangeRead

  LiveOutcome Execute(const LiveRequest& req, const std::atomic<bool>& cancel) override;

 private:
  LiveOutcome PointOp(const LiveRequest& req);
  LiveOutcome RangeRead(const LiveRequest& req, const std::atomic<bool>& cancel);

  LiveMiniKvOptions options_;
  std::mutex keyspace_mu_;  // the real keyspace lock workers contend on
};

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_APP_H_
