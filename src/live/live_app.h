// Live request handlers: miniweb and minikv re-expressed as code running on
// real OS threads.
//
// Each handler executes synchronously on a worker thread, burning genuine
// wall-clock time and contending on genuine synchronization (minikv's
// keyspace lock is a real CancellableMutex). Instrumentation goes through the
// paper's C API exactly as an integrated application's would: the worker
// establishes the thread's current cancellable before calling Execute, so
// getResource / freeResource / slowByResourceBegin/End / reportProgress
// attribute to the right task via thread identity (paper §3.2).
//
// Cancellation reaches a handler through its WaitContext two ways:
//   - the keyed CancelSignal, polled at checkpoints (§2.4 cooperative
//     pattern) — always available;
//   - the worker's AbortCell, which lets the initiator abort a wait *parked*
//     inside the keyspace lock in place (DESIGN.md §16). A null cell is the
//     checkpoint-polling baseline: lock waits are uninterruptible and a
//     cancelled waiter still acquires before it can notice the order.
//
// Request type enum values and names deliberately match the simulator apps
// (MiniWebRequestType / MiniKvRequestType, "static"/"script",
// "point_op"/"range_read") so the sim-vs-live digest cross-check can compare
// culprit picks by label.

#ifndef SRC_LIVE_LIVE_APP_H_
#define SRC_LIVE_LIVE_APP_H_

#include <cstdint>
#include <string_view>

#include "src/common/clock.h"
#include "src/live/live_request.h"
#include "src/sync/abort_cell.h"
#include "src/sync/cancellable_mutex.h"

namespace atropos {

class LiveApp {
 public:
  virtual ~LiveApp() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view RequestTypeName(int type) const = 0;
  // The scenario's steady fast traffic / injected heavy traffic.
  virtual int victim_type() const = 0;
  virtual int culprit_type() const = 0;

  // Runs the request to completion on the calling worker thread. `ctx`
  // carries the keyed cancel signal (polled at checkpoints) and, when the
  // abortable sync layer is enabled, the worker's park cell.
  virtual LiveOutcome Execute(const LiveRequest& req, const WaitContext& ctx) = 0;

  // Lock waits the app's substrate aborted in place (0 for apps without an
  // abortable lock). Under a convoy this is the count of cancelled waiters
  // that left the keyspace queue without ever acquiring.
  virtual uint64_t aborted_lock_waits() const { return 0; }
};

// Apache MaxClients analogue (sim case c9): fast static serves vs. scripts
// that hold a worker thread for a long time. The "pool" under contention is
// the worker-thread pool itself; the server attributes queue waits and
// worker holds against the capi QUEUE resource.
struct LiveMiniWebOptions {
  TimeMicros static_cost = 2000;      // 2 ms static file
  TimeMicros script_cost = 1'500'000;  // 1.5 s script
  TimeMicros script_slice = 5000;     // cancellation-checkpoint granularity
};

class LiveMiniWeb final : public LiveApp {
 public:
  explicit LiveMiniWeb(LiveMiniWebOptions options) : options_(options) {}

  std::string_view name() const override { return "live_miniweb"; }
  std::string_view RequestTypeName(int type) const override;
  int victim_type() const override { return 0; }   // kWebStatic
  int culprit_type() const override { return 1; }  // kWebScript

  LiveOutcome Execute(const LiveRequest& req, const WaitContext& ctx) override;

 private:
  LiveOutcome RunScript(const LiveRequest& req, const WaitContext& ctx);

  LiveMiniWebOptions options_;
};

// etcd keyspace-lock analogue (sim case c16): point ops and large range
// reads serialize on one real mutex. A range read holds it for seconds,
// convoying every point op behind it; with the abortable lock a cancelled
// waiter aborts in place, without it cancellation takes effect only at the
// holder's next scan-batch checkpoint.
struct LiveMiniKvOptions {
  TimeMicros point_op_cost = 1000;   // 1 ms under the lock
  TimeMicros scan_cost_per_key = 20;
  uint64_t scan_batch = 200;         // keys per cancellation checkpoint
  uint64_t default_range_span = 50'000;
  // Batches scanned per lock hold before the scan releases and re-acquires
  // (the etcd/InnoDB periodic-yield idiom). 0 = hold for the whole scan.
  // With yielding, concurrent scans spend most of their time *parked* at
  // re-acquisition, so a cancel aimed at the top culprit usually lands on a
  // parked waiter — the case in-place abort exists for: under checkpoint
  // polling that waiter must still climb through the whole convoy before it
  // can observe the order.
  uint64_t scan_yield_every = 0;
};

class LiveMiniKv final : public LiveApp {
 public:
  explicit LiveMiniKv(LiveMiniKvOptions options) : options_(options) {}

  std::string_view name() const override { return "live_minikv"; }
  std::string_view RequestTypeName(int type) const override;
  int victim_type() const override { return 0; }   // kKvPointOp
  int culprit_type() const override { return 1; }  // kKvRangeRead

  LiveOutcome Execute(const LiveRequest& req, const WaitContext& ctx) override;

  uint64_t aborted_lock_waits() const override { return keyspace_mu_.aborted_waits(); }

 private:
  LiveOutcome PointOp(const LiveRequest& req, const WaitContext& ctx);
  LiveOutcome RangeRead(const LiveRequest& req, const WaitContext& ctx);

  LiveMiniKvOptions options_;
  CancellableMutex keyspace_mu_;  // the real keyspace lock workers contend on
};

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_APP_H_
