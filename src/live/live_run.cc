#include "src/live/live_run.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/atropos/capi.h"
#include "src/live/live_clock.h"
#include "src/live/loadgen.h"
#include "src/obs/flight_recorder.h"

namespace atropos {

LiveRunResult RunLiveScenario(const LiveScenario& scenario, const LiveRunOptions& options) {
  RunClock clock;

  AtroposConfig config = scenario.config;
  config.cancellation_enabled = options.cancellation_enabled;
  ConcurrentFrontend frontend(&clock, config);

  FlightRecorder recorder;
  frontend.runtime().SetRecorder(&recorder);

  // Install before constructing the server: the server resolves the capi
  // QUEUE default resource, which installation registers.
  InstallGlobalFrontend(&frontend);

  std::unique_ptr<LiveApp> app;
  if (scenario.web) {
    app = std::make_unique<LiveMiniWeb>(scenario.web_options);
  } else {
    app = std::make_unique<LiveMiniKv>(scenario.kv_options);
  }

  LiveServerOptions sopt;
  sopt.workers = scenario.workers;
  sopt.queue_capacity = scenario.queue_capacity;
  sopt.measure_start = scenario.warmup;
  sopt.abortable_sync = options.abortable_sync;
  LiveServer server(&frontend, &clock, app.get(), sopt);

  // The cancellation initiator the drainer invokes: DeliverCancel is a
  // bounded scan of atomic slots — board first (aborting a parked wait in
  // place), then the queue (cancelling a still-queued task in its slot).
  // Cancel-action-safety: no blocking, no allocation on any path.
  LiveServer* server_ptr = &server;
  frontend.runtime().SetCancelAction([server_ptr](uint64_t key) { server_ptr->DeliverCancel(key); });

  LiveApp* app_raw = app.get();
  frontend.runtime().SetCancelObserver([&recorder, app_raw](uint64_t key, double /*score*/) {
    // The type rides in the key (MakeLiveKey), so naming the victim needs no
    // cross-thread lookup.
    recorder.AnnotateLast(ObsEventKind::kCancelIssued,
                          std::string(app_raw->RequestTypeName(TypeOfLiveKey(key))));
  });

  server.Start();

  LoadGen gen(&server, &clock, scenario.seed);
  for (const OpenLoopSpec& spec : scenario.open_streams) {
    gen.AddOpenLoop(spec);
  }
  for (const ClosedLoopSpec& spec : scenario.closed_streams) {
    gen.AddClosedLoop(spec);
  }
  for (const BurstSpec& spec : scenario.bursts) {
    gen.AddBurst(spec);
  }

  std::atomic<bool> stop_drainer{false};
  std::thread drainer([&frontend, &stop_drainer, &config] {
    while (!stop_drainer.load(std::memory_order_acquire)) {
      frontend.Tick();
      std::this_thread::sleep_for(std::chrono::microseconds(config.window));
    }
  });

  gen.Start(scenario.duration);
  while (clock.NowMicros() < scenario.duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Shutdown order per the header: Stop releases parked waiters before the
  // generator joins; drainer-ship then transfers to this thread over join,
  // and the final Tick drains the retired producers' rings.
  server.Stop();
  gen.Join();
  stop_drainer.store(true, std::memory_order_release);
  drainer.join();
  frontend.Tick();

  LiveRunResult result;
  result.stats = frontend.runtime().stats();
  result.intake = frontend.intake_stats();
  result.events = recorder.Snapshot();
  result.digest = NormalizeDecisions(result.events, scenario.duration);
  result.by_type = server.stats_by_type();
  result.arrivals = gen.arrivals();
  result.shed = server.shed();
  result.cancels_delivered = server.board().delivered();
  result.cancels_missed = server.board().missed();
  result.lock_waits_aborted = app->aborted_lock_waits();
  result.queued_cancelled = server.queued_cancelled();
  result.cancel_to_release_count = server.cancel_to_release().count();
  result.cancel_to_release_p50 = server.cancel_to_release().P50();
  result.cancel_to_release_p99 = server.cancel_to_release().P99();

  const int victim = app->victim_type();
  const int culprit = app->culprit_type();
  auto vit = result.by_type.find(victim);
  if (vit != result.by_type.end()) {
    result.victim_completed = vit->second.completed;
    result.victim_p50 = vit->second.latency.P50();
    result.victim_p99 = vit->second.latency.P99();
  }
  auto cit = result.by_type.find(culprit);
  if (cit != result.by_type.end()) {
    result.culprit_completed = cit->second.completed;
    result.culprit_cancelled = cit->second.cancelled;
  }
  const TimeMicros measured = scenario.duration - scenario.warmup;
  result.goodput_qps =
      measured > 0 ? static_cast<double>(result.victim_completed) / ToSeconds(measured) : 0.0;

  InstallGlobalFrontend(nullptr);
  return result;
}

}  // namespace atropos
