// Orchestration of one live-threads run: real workers, real load, Atropos
// ticking on a dedicated drainer thread, targeted cancellation delivered
// through the CancelBoard.
//
// Thread/shutdown ordering (the part that is easy to get wrong):
//   1. InstallGlobalFrontend, recorder, cancel action/observer — all before
//      any producer thread starts (the frontend's setup contract).
//   2. server.Start(), gen.Start(deadline), drainer thread starts ticking.
//   3. Main sleeps to the deadline.
//   4. server.Stop() first — it signals every parked closed-loop waiter, so
//      step 5 cannot deadlock on a client blocked in Wait().
//   5. gen.Join(), then stop+join the drainer.
//   6. One final Tick() from the main thread (legal: drainer-ship transfers
//      over the join) drains everything the exiting threads left in their
//      rings, including the retired producers' tails.
//   7. Uninstall, snapshot stats, normalize the decision digest.

#ifndef SRC_LIVE_LIVE_RUN_H_
#define SRC_LIVE_LIVE_RUN_H_

#include <map>

#include <vector>

#include "src/atropos/concurrent_frontend.h"
#include "src/atropos/stats.h"
#include "src/live/decision_digest.h"
#include "src/obs/events.h"
#include "src/live/live_server.h"
#include "src/live/scenario.h"

namespace atropos {

struct LiveRunOptions {
  // Overrides scenario.config.cancellation_enabled — the Fig-14-style pair of
  // runs (tracing on, actions on/off) that the CLI prints side by side.
  bool cancellation_enabled = true;
  // Abortable synchronization (DESIGN.md §16): cancellation aborts parked
  // lock/queue waiters in place. Off = checkpoint-polling baseline, where a
  // cancelled waiter still acquires before it can observe the order.
  bool abortable_sync = true;
};

struct LiveRunResult {
  // Victim-stream health over the measured window (post-warmup).
  double goodput_qps = 0.0;
  TimeMicros victim_p50 = 0;
  TimeMicros victim_p99 = 0;
  uint64_t victim_completed = 0;

  uint64_t culprit_completed = 0;
  uint64_t culprit_cancelled = 0;

  uint64_t arrivals = 0;  // all streams, whole run
  uint64_t shed = 0;      // queue-full rejects + shutdown drains

  // Cancellation delivery accounting (board-side).
  uint64_t cancels_delivered = 0;
  uint64_t cancels_missed = 0;
  // In-place abort accounting (DESIGN.md §16). Lock waits the app's substrate
  // aborted without the waiter ever acquiring; tasks cancelled while still
  // queued (never executed); and the RequestCancel-to-handler-return latency
  // distribution for delivered cancellations.
  uint64_t lock_waits_aborted = 0;
  uint64_t queued_cancelled = 0;
  uint64_t cancel_to_release_count = 0;
  TimeMicros cancel_to_release_p50 = 0;
  TimeMicros cancel_to_release_p99 = 0;

  AtroposStats stats;                     // wrapped runtime, after final Tick
  ConcurrentFrontend::IntakeStats intake; // ring totals, after final Tick
  DecisionDigest digest;
  // Raw flight-recorder stream (the digest's preimage), for --trace dumps
  // and the offline bottleneck diagnoser.
  std::vector<FlightEvent> events;

  std::map<int, LiveTypeStats> by_type;
};

LiveRunResult RunLiveScenario(const LiveScenario& scenario, const LiveRunOptions& options);

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_RUN_H_
