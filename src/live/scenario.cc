#include "src/live/scenario.h"

#include <memory>
#include <utility>

#include "src/apps/minikv.h"
#include "src/apps/miniweb.h"
#include "src/atropos/runtime.h"
#include "src/obs/flight_recorder.h"

namespace atropos {

std::string_view ScenarioName(LiveScenarioKind kind) {
  switch (kind) {
    case LiveScenarioKind::kCulpritBurst:
      return "culprit-burst";
    case LiveScenarioKind::kNoisyNeighbor:
      return "noisy-neighbor";
    case LiveScenarioKind::kLockConvoy:
      return "lock-convoy";
  }
  return "unknown";
}

bool ParseScenario(std::string_view name, LiveScenarioKind* out) {
  if (name == "culprit-burst" || name == "burst") {
    *out = LiveScenarioKind::kCulpritBurst;
    return true;
  }
  if (name == "noisy-neighbor" || name == "noisy") {
    *out = LiveScenarioKind::kNoisyNeighbor;
    return true;
  }
  if (name == "lock-convoy" || name == "convoy") {
    *out = LiveScenarioKind::kLockConvoy;
    return true;
  }
  return false;
}

LiveScenario MakeScenario(LiveScenarioKind kind, size_t workers, TimeMicros duration,
                          double load_scale, uint64_t seed) {
  LiveScenario s;
  s.kind = kind;
  s.workers = workers > 0 ? workers : 8;
  s.duration = duration > 0 ? duration : Seconds(8);
  s.warmup = std::min<TimeMicros>(Seconds(1), s.duration / 8);
  s.seed = seed;

  // Shared runtime configuration. The baseline p99 is pinned instead of
  // calibrated: live wall-clock warmup is noisy enough that calibration could
  // race the culprit injection, and the cross-check needs both modes armed
  // from the same threshold.
  s.config.window = Millis(50);
  s.config.slo_latency_increase = 0.20;
  s.config.baseline_p99 = Millis(30);
  s.config.min_cancel_interval = Millis(150);

  // Culprits land after warmup plus a quarter of the measured span, leaving
  // most of the run for detection, cancellation, and recovery.
  const TimeMicros inject_at = s.warmup + (s.duration - s.warmup) / 4;

  OpenLoopSpec victims;
  victims.client_class = 0;

  ClosedLoopSpec clients;
  clients.clients = 2;
  clients.client_class = 0;
  clients.think_time = Millis(5);

  switch (kind) {
    case LiveScenarioKind::kCulpritBurst: {
      s.web = true;
      s.queue_capacity = 2048;
      victims.type = 0;  // static
      victims.qps = 250 * load_scale;
      clients.type = 0;
      // One wave of scripts, two per worker: the pool saturates instantly and
      // stays saturated for ~2 script lifetimes unless Atropos intervenes.
      BurstSpec burst;
      burst.type = 1;  // script
      burst.count = s.workers * 2;
      burst.client_class = 1;
      burst.at = inject_at;
      s.bursts = {burst};
      break;
    }
    case LiveScenarioKind::kNoisyNeighbor: {
      s.web = true;
      s.queue_capacity = 2048;
      victims.type = 0;
      victims.qps = 250 * load_scale;
      clients.type = 0;
      // Continuous script stream sized to hold ~90% of the pool on average;
      // Poisson bursts push it over the top for sustained stretches.
      OpenLoopSpec noisy;
      noisy.type = 1;
      noisy.qps = 0.9 * static_cast<double>(s.workers) /
                  ToSeconds(s.web_options.script_cost);
      noisy.client_class = 1;
      noisy.start = inject_at;
      s.open_streams.push_back(noisy);
      break;
    }
    case LiveScenarioKind::kLockConvoy: {
      s.web = false;
      s.queue_capacity = 2048;
      victims.type = 0;  // point_op
      victims.qps = 200 * load_scale;
      clients.type = 0;
      // Range reads spanning 100k keys hold the real keyspace mutex for ~2 s
      // each (scan_cost_per_key = 20 µs). The arrival rate is set well above
      // one scan per hold time so a convoy of parked scans forms behind the
      // holder — the predicted-gain policy then cancels *parked* culprits
      // (their whole future hold is the gain), which is what exercises the
      // in-place waiter abort against the checkpoint-polling baseline.
      OpenLoopSpec scans;
      scans.type = 1;  // range_read
      scans.qps = 2.0;
      scans.arg = 100'000;
      scans.client_class = 1;
      scans.start = inject_at;
      s.open_streams.push_back(scans);
      // Scans yield the lock every 5 batches (1k keys ≈ 20 ms per hold):
      // concurrent scans rotate through the lock, so the top culprit is
      // usually parked at re-acquisition when its cancel arrives.
      s.kv_options.scan_yield_every = 5;
      break;
    }
  }

  s.open_streams.push_back(victims);
  s.closed_streams.push_back(clients);
  return s;
}

namespace {

// Late-bound control surface: the runtime must exist before the app (the app
// registers resources against its controller in the constructor), but the
// runtime's dispatcher routes cancellations to the app. Same shape as the
// workload runner's proxy.
class LateSurface final : public ControlSurface {
 public:
  void Bind(ControlSurface* real) { real_ = real; }
  void CancelTask(uint64_t key, CancelReason reason) override {
    if (real_ != nullptr) {
      real_->CancelTask(key, reason);
    }
  }
  void ThrottleTask(uint64_t key, double factor) override {
    if (real_ != nullptr) {
      real_->ThrottleTask(key, factor);
    }
  }
  void SetTypeReservation(int request_type, int workers) override {
    if (real_ != nullptr) {
      real_->SetTypeReservation(request_type, workers);
    }
  }
  void SetClientShare(int client_class, double share) override {
    if (real_ != nullptr) {
      real_->SetClientShare(client_class, share);
    }
  }

 private:
  ControlSurface* real_ = nullptr;
};

}  // namespace

SimCounterpartResult RunSimCounterpart(const LiveScenario& scenario) {
  Executor executor;
  LateSurface surface;

  AtroposRuntime runtime(executor.clock(), scenario.config);
  runtime.SetControlSurface(&surface);

  std::unique_ptr<App> app;
  if (scenario.web) {
    MiniWebOptions opt;
    opt.pool.max_clients = static_cast<int>(scenario.workers);
    opt.static_cost = scenario.web_options.static_cost;
    opt.script_cost = scenario.web_options.script_cost;
    app = std::make_unique<MiniWeb>(executor, &runtime, opt);
  } else {
    MiniKvOptions opt;
    opt.store.point_op_cost = scenario.kv_options.point_op_cost;
    opt.store.scan_cost_per_key = scenario.kv_options.scan_cost_per_key;
    opt.store.scan_batch = scenario.kv_options.scan_batch;
    opt.default_range_span = scenario.kv_options.default_range_span;
    app = std::make_unique<MiniKv>(executor, &runtime, opt);
  }
  surface.Bind(app.get());

  FrontendOptions fopt;
  fopt.duration = scenario.duration;
  fopt.warmup = scenario.warmup;
  fopt.tick_window = scenario.config.window;
  fopt.seed = scenario.seed;
  Frontend frontend(executor, *app, runtime, fopt);

  FlightRecorder recorder;
  runtime.SetRecorder(&recorder);
  App* app_raw = app.get();
  runtime.SetCancelObserver([&frontend, &recorder, app_raw](uint64_t key, double /*score*/) {
    const int type = frontend.TypeOfKey(key);
    recorder.AnnotateLast(ObsEventKind::kCancelIssued,
                          type >= 0 ? std::string(app_raw->RequestTypeName(type)) : "background");
  });

  // One workload shape, two projections: the live specs translate 1:1 into
  // the frontend's traffic model.
  for (const OpenLoopSpec& spec : scenario.open_streams) {
    TrafficSpec t;
    t.type = spec.type;
    t.qps = spec.qps;
    t.arg = spec.arg;
    t.client_class = spec.client_class;
    t.start = spec.start;
    if (spec.end > 0) {
      t.end = spec.end;
    }
    frontend.AddTraffic(t);
  }
  for (const ClosedLoopSpec& spec : scenario.closed_streams) {
    TrafficSpec t;
    t.type = spec.type;
    t.arg = spec.arg;
    t.client_class = spec.client_class;
    t.start = spec.start;
    if (spec.end > 0) {
      t.end = spec.end;
    }
    t.closed_loop_clients = static_cast<int>(spec.clients);
    t.think_time = spec.think_time;
    frontend.AddTraffic(t);
  }
  for (const BurstSpec& burst : scenario.bursts) {
    for (size_t i = 0; i < burst.count; i++) {
      OneShotSpec shot;
      shot.type = burst.type;
      shot.at = burst.at;
      shot.arg = burst.arg;
      shot.client_class = burst.client_class;
      frontend.AddOneShot(shot);
    }
  }

  SimCounterpartResult result;
  result.metrics = frontend.Run();
  result.stats = runtime.stats();
  result.digest = NormalizeDecisions(recorder.Snapshot(), scenario.duration);
  return result;
}

}  // namespace atropos
