// LiveServer: a bounded request queue served by real OS worker threads, with
// per-worker Atropos instrumentation through the C API.
//
// Threading model (documented in DESIGN.md §14/§16):
//
//   load generator threads ──Submit()──► AbortableQueue ──► worker 0..N-1
//                                                             │
//        per-thread SPSC rings (ConcurrentFrontend) ◄─────────┘ capi tracing
//                                                             │
//        CancelBoard slot[i] ◄── Atropos drainer's cancel initiator
//
// Cancellation (DeliverCancel, the registered initiator) is delivered three
// ways, all lock-free from the initiator: the board's keyed cancel word
// (polled at handler checkpoints), the board's AbortCell (aborts a wait
// parked inside an abortable primitive in place), and the queue's slot mark
// (a still-queued task is completed as cancelled without executing).
//
// Event ordering contract: Submit emits OnTaskRegistered / OnRequestStart /
// OnWaitBegin(queue) on the *submitting* thread before the request becomes
// visible to any worker (both under the queue mutex), and the worker emits
// OnWaitEnd(queue) only after popping — so the wall-clock stamps can never
// order a WaitEnd before its WaitBegin in the drainer's timestamp merge.
//
// Every accepted request is signalled exactly once: at completion, at
// cancellation, or as kShed when Stop() drains the queue. Submit on a full
// queue (or on a server that is not running) rejects immediately without
// emitting any events — the MaxClients listen-backlog overflowing.
//
// Lifecycle: kNew → Start() → kStarting → kRunning → Stop() → kStopped, one
// way. Start on anything but kNew fails loudly (returns false, logs to
// stderr); Stop is idempotent, waits out a concurrent Start's kStarting
// window before touching the worker vector, and merges worker stats exactly
// once.

#ifndef SRC_LIVE_LIVE_SERVER_H_
#define SRC_LIVE_LIVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "src/atropos/concurrent_frontend.h"
#include "src/common/histogram.h"
#include "src/live/cancel_board.h"
#include "src/live/live_app.h"
#include "src/live/live_request.h"
#include "src/sync/abortable_queue.h"

namespace atropos {

struct LiveServerOptions {
  size_t workers = 8;
  size_t queue_capacity = 512;
  // Requests enqueued before this RunClock time are warmup and excluded from
  // stats (classified by admission, not completion — a slow request admitted
  // during warmup must not leak into the measured window).
  TimeMicros measure_start = 0;
  // Hand workers' AbortCells to the app so cancellation aborts parked lock
  // waits in place. Off = the checkpoint-polling baseline the bench compares
  // against.
  bool abortable_sync = true;
};

// Per-request-type outcome accounting over the measured window.
struct LiveTypeStats {
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  LatencyHistogram latency;  // submit-to-completion, completions only
};

class LiveServer {
 public:
  LiveServer(ConcurrentFrontend* frontend, Clock* clock, LiveApp* app,
             LiveServerOptions options);
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  // False (with a stderr diagnostic) if the server already ran: the lifecycle
  // is one-way, construct a new server to run again.
  bool Start();

  // Any load-generator thread. False = shed (queue full or server stopped);
  // the caller must not expect a waiter signal in that case.
  bool Submit(LiveRequest req);

  // Cancellation initiator entry point (registered as the runtime's cancel
  // action): board first — covering the executing task and any wait it is
  // parked in — then the queue, cancelling a still-queued task in its slot.
  // A queue mark that raced the pop of its own slot (AbortResult::kRaced) is
  // chased back to the board with a bounded retry: the popping worker is
  // about to publish the key via BeginTask. Lock-free and allocation-free on
  // every path.
  bool DeliverCancel(uint64_t key);

  // Cancels in-flight work, drains and sheds the queue (signalling every
  // parked waiter), and joins the workers. Idempotent; merges stats once.
  void Stop();

  CancelBoard& board() { return board_; }

  // Post-Stop accessors (worker stats are merged by Stop).
  const std::map<int, LiveTypeStats>& stats_by_type() const { return merged_; }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  // Tasks cancelled in place while still queued (never executed).
  uint64_t queued_cancelled() const { return queued_cancelled_; }
  // RequestCancel-to-handler-return latency for cancellations delivered to an
  // executing task: the paper's cancel-to-release collapse measurement.
  const LatencyHistogram& cancel_to_release() const { return cancel_to_release_; }

 private:
  // kStarting covers the window where Start() is still spawning workers:
  // Submit sheds (not yet kRunning) and Stop spins until the worker vector
  // is fully published before it may CAS kRunning -> kStopped and join.
  enum class State : uint32_t { kNew = 0, kStarting = 1, kRunning = 2, kStopped = 3 };

  struct WorkerStats {
    std::map<int, LiveTypeStats> by_type;
    LatencyHistogram cancel_to_release;
    uint64_t queued_cancelled = 0;
  };

  void WorkerLoop(size_t slot);
  void FinishRequest(const LiveRequest& req, LiveOutcome out, WorkerStats* stats,
                     TimeMicros cancel_at);

  ConcurrentFrontend* frontend_;
  Clock* clock_;
  LiveApp* app_;
  LiveServerOptions options_;
  ResourceId queue_resource_;

  CancelBoard board_;
  AbortableQueue<LiveRequest> queue_;
  std::vector<std::thread> workers_;
  std::vector<WorkerStats> worker_stats_;

  std::atomic<State> state_{State::kNew};

  std::atomic<uint64_t> shed_{0};
  // Set by Stop() before it raises every board flag: handlers aborted by the
  // shutdown sweep are shed, not Atropos cancellations, and must not count
  // toward the cancelled stats.
  std::atomic<bool> aborting_{false};
  std::map<int, LiveTypeStats> merged_;
  LatencyHistogram cancel_to_release_;
  uint64_t queued_cancelled_ = 0;
};

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_SERVER_H_
