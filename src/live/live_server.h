// LiveServer: a bounded request queue served by real OS worker threads, with
// per-worker Atropos instrumentation through the C API.
//
// Threading model (documented in DESIGN.md §14):
//
//   load generator threads ──Submit()──► bounded queue ──► worker 0..N-1
//                                                             │
//        per-thread SPSC rings (ConcurrentFrontend) ◄─────────┘ capi tracing
//                                                             │
//        CancelBoard slot[i] ◄── Atropos drainer's cancel initiator
//
// Event ordering contract: Submit emits OnTaskRegistered / OnRequestStart /
// OnWaitBegin(queue) on the *submitting* thread before the request becomes
// visible to any worker (both under the queue mutex), and the worker emits
// OnWaitEnd(queue) only after popping — so the wall-clock stamps can never
// order a WaitEnd before its WaitBegin in the drainer's timestamp merge.
//
// Every accepted request is signalled exactly once: at completion, at
// cancellation, or as kShed when Stop() drains the queue. Submit on a full
// queue (or after Stop) rejects immediately without emitting any events —
// the MaxClients listen-backlog overflowing.

#ifndef SRC_LIVE_LIVE_SERVER_H_
#define SRC_LIVE_LIVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/atropos/concurrent_frontend.h"
#include "src/common/histogram.h"
#include "src/live/cancel_board.h"
#include "src/live/live_app.h"
#include "src/live/live_request.h"

namespace atropos {

struct LiveServerOptions {
  size_t workers = 8;
  size_t queue_capacity = 512;
  // Completions before this RunClock time are warmup and excluded from stats.
  TimeMicros measure_start = 0;
};

// Per-request-type outcome accounting over the measured window.
struct LiveTypeStats {
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  LatencyHistogram latency;  // submit-to-completion, completions only
};

class LiveServer {
 public:
  LiveServer(ConcurrentFrontend* frontend, Clock* clock, LiveApp* app,
             LiveServerOptions options);
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  void Start();

  // Any load-generator thread. False = shed (queue full or server stopped);
  // the caller must not expect a waiter signal in that case.
  bool Submit(LiveRequest req);

  // Cancels in-flight work, drains and sheds the queue (signalling every
  // parked waiter), and joins the workers. Idempotent.
  void Stop();

  CancelBoard& board() { return board_; }

  // Post-Stop accessors (worker stats are merged by Stop).
  const std::map<int, LiveTypeStats>& stats_by_type() const { return merged_; }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  struct WorkerStats {
    std::map<int, LiveTypeStats> by_type;
  };

  void WorkerLoop(size_t slot);
  void FinishRequest(const LiveRequest& req, LiveOutcome out, WorkerStats* stats);

  ConcurrentFrontend* frontend_;
  Clock* clock_;
  LiveApp* app_;
  LiveServerOptions options_;
  ResourceId queue_resource_;

  CancelBoard board_;
  std::vector<std::thread> workers_;
  std::vector<WorkerStats> worker_stats_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<LiveRequest> queue_;
  bool stopping_ = false;
  bool started_ = false;

  std::atomic<uint64_t> shed_{0};
  // Set by Stop() before it raises every board flag: handlers aborted by the
  // shutdown sweep are shed, not Atropos cancellations, and must not count
  // toward the cancelled stats.
  std::atomic<bool> aborting_{false};
  std::map<int, LiveTypeStats> merged_;
};

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_SERVER_H_
