#include "src/live/decision_digest.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace atropos {

namespace {

std::string DominantKey(const std::map<std::string, uint64_t>& hist) {
  std::string best;
  uint64_t best_count = 0;
  for (const auto& [label, count] : hist) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::string DecisionDigest::DominantCancelLabel() const { return DominantKey(cancels_by_label); }

std::string DecisionDigest::DominantOverloadedClass() const {
  return DominantKey(overloaded_classes);
}

DecisionDigest NormalizeDecisions(const std::vector<FlightEvent>& events, TimeMicros duration) {
  DecisionDigest d;
  d.duration_s = ToSeconds(duration);
  TimeMicros first_cancel = 0;
  bool saw_cancel = false;
  for (const FlightEvent& ev : events) {
    switch (ev.kind) {
      case ObsEventKind::kWindowClosed:
        d.windows++;
        break;
      case ObsEventKind::kOverloadEntered:
        d.overload_entered++;
        break;
      case ObsEventKind::kContentionSnapshot:
        d.snapshots++;
        for (const ObsResourceSample& r : ev.resources) {
          if (r.overloaded) {
            d.overloaded_classes[r.cls]++;
          }
        }
        break;
      case ObsEventKind::kPolicyDecision:
        d.policy_decisions++;
        break;
      case ObsEventKind::kCancelIssued:
        d.cancels++;
        d.cancels_by_label[ev.label.empty() ? "unknown" : ev.label]++;
        if (!saw_cancel) {
          saw_cancel = true;
          first_cancel = ev.time;
        }
        break;
      default:
        break;
    }
  }
  if (saw_cancel && duration > 0) {
    d.first_cancel_frac = std::min(1.0, ToSeconds(first_cancel) / ToSeconds(duration));
  }
  return d;
}

std::string CrossCheckReport::Render() const {
  std::ostringstream out;
  out << "digest cross-check: " << (pass ? "PASS" : "FAIL") << "\n";
  for (const Check& c : checks) {
    out << "  [" << (c.pass ? "ok" : "FAIL") << "] " << c.name << ": " << c.detail << "\n";
  }
  return out.str();
}

CrossCheckReport CrossCheckDigests(const DecisionDigest& live, const DecisionDigest& sim,
                                   const ToleranceBands& bands) {
  CrossCheckReport report;
  auto add = [&report](std::string name, bool pass, std::string detail) {
    report.checks.push_back({std::move(name), pass, std::move(detail)});
  };

  {
    const bool live_overload = live.overload_entered > 0;
    const bool sim_overload = sim.overload_entered > 0;
    const bool pass = !bands.require_overload_match || live_overload == sim_overload;
    std::ostringstream detail;
    detail << "live entered " << live.overload_entered << "x, sim " << sim.overload_entered << "x";
    add("overload_detected", pass, detail.str());
  }

  {
    // Both-or-neither, then rate band: ratio within cancel_rate_ratio OR
    // absolute count gap within cancel_slack.
    bool pass;
    std::ostringstream detail;
    if ((live.cancels == 0) != (sim.cancels == 0)) {
      pass = false;
      detail << "live " << live.cancels << " cancels vs sim " << sim.cancels;
    } else if (live.cancels == 0) {
      pass = true;
      detail << "neither run cancelled";
    } else {
      const double lr = live.CancelRate();
      const double sr = sim.CancelRate();
      const double ratio = std::max(lr, sr) / std::max(1e-9, std::min(lr, sr));
      const uint64_t gap =
          live.cancels > sim.cancels ? live.cancels - sim.cancels : sim.cancels - live.cancels;
      pass = ratio <= bands.cancel_rate_ratio || gap <= bands.cancel_slack;
      detail << "live " << live.cancels << " (" << lr << "/s) vs sim " << sim.cancels << " (" << sr
             << "/s), ratio " << ratio << " <= " << bands.cancel_rate_ratio << " or gap " << gap
             << " <= " << bands.cancel_slack;
    }
    add("cancel_rate", pass, detail.str());
  }

  {
    const std::string live_label = live.DominantCancelLabel();
    const std::string sim_label = sim.DominantCancelLabel();
    const bool applicable = live.cancels > 0 && sim.cancels > 0;
    const bool pass =
        !bands.require_culprit_match || !applicable || live_label == sim_label;
    std::ostringstream detail;
    detail << "live culprit '" << live_label << "', sim culprit '" << sim_label << "'";
    add("dominant_culprit", pass, detail.str());
  }

  {
    const std::string sim_cls = sim.DominantOverloadedClass();
    const bool applicable = !sim_cls.empty();
    const bool pass = !bands.require_resource_class || !applicable ||
                      live.overloaded_classes.count(sim_cls) > 0;
    std::ostringstream detail;
    detail << "sim blames '" << sim_cls << "', live flagged {";
    bool first = true;
    for (const auto& [cls, n] : live.overloaded_classes) {
      detail << (first ? "" : ", ") << cls;
      first = false;
    }
    detail << "}";
    add("resource_class", pass, detail.str());
  }

  {
    const bool applicable = live.first_cancel_frac >= 0 && sim.first_cancel_frac >= 0;
    const double gap =
        applicable ? std::abs(live.first_cancel_frac - sim.first_cancel_frac) : 0.0;
    const bool pass = !applicable || gap <= bands.first_cancel_frac_slack;
    std::ostringstream detail;
    detail << "live at " << live.first_cancel_frac << " of run, sim at " << sim.first_cancel_frac
           << " (slack " << bands.first_cancel_frac_slack << ")";
    add("first_cancel_time", pass, detail.str());
  }

  report.pass = true;
  for (const CrossCheckReport::Check& c : report.checks) {
    report.pass = report.pass && c.pass;
  }
  return report;
}

}  // namespace atropos
