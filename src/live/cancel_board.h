// CancelBoard: lock-free, allocation-free delivery of targeted cancellation
// to live worker threads.
//
// The Atropos dispatcher invokes the application's cancellation initiator
// from its own control loop; §3.6 requires that initiator to only *request*
// cancellation and return — no blocking, no allocation (the atropos_lint
// cancel-action-safety check enforces this shape). The board is the live
// subsystem's realization: one fixed slot per worker holding the key of the
// task the worker is executing, a keyed cancel word, and an AbortCell the
// worker parks on when it blocks inside an abortable primitive.
//
// Delivery is *keyed*: RequestCancel stores the key it intends to cancel
// into the slot's cancel word, and the worker's CancelSignal compares the
// word against its own task's key at checkpoints. The earlier design used a
// bool flag cleared by BeginTask before publishing the new key — an
// initiator that loaded the previous key could store `cancel=true` after the
// clear and wrongly cancel the *next* task. With keyed delivery that store
// writes the previous key, which can never equal the next task's (unique)
// key, so the race is structurally impossible (regression-stressed under
// TSan in tests/live/live_test.cc).
//
// The embedded AbortCell makes cancellation reach a *parked* waiter too:
// RequestCancel CASes the cell (AbortCell::TryAbort, lock-free) so a task
// blocked on a CancellableMutex/Semaphore or the abortable request queue
// aborts in place instead of waiting for its next polling checkpoint.

#ifndef SRC_LIVE_CANCEL_BOARD_H_
#define SRC_LIVE_CANCEL_BOARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/sync/abort_cell.h"

namespace atropos {

class CancelBoard {
 public:
  explicit CancelBoard(size_t workers) : slots_(workers) {}

  CancelBoard(const CancelBoard&) = delete;
  CancelBoard& operator=(const CancelBoard&) = delete;

  // Worker side. BeginTask publishes the worker's current task key; EndTask
  // retracts it. The cancel word is cleared only as hygiene — a stale store
  // racing BeginTask writes the *previous* key and cannot match the new one.
  void BeginTask(size_t slot, uint64_t key) {
    Slot& s = slots_[slot];
    s.cancel_key.store(0, std::memory_order_seq_cst);
    s.cancel_time.store(0, std::memory_order_relaxed);
    s.key.store(key, std::memory_order_seq_cst);
  }

  void EndTask(size_t slot) { slots_[slot].key.store(0, std::memory_order_seq_cst); }

  // The keyed signal the worker's request handler polls at checkpoints while
  // executing task `key` on `slot`.
  CancelSignal signal(size_t slot, uint64_t key) const {
    return CancelSignal(&slots_[slot].cancel_key, key);
  }

  // The worker's reusable park cell — its storage outlives every wait, so
  // the initiator's lock-free TryAbort never chases freed memory.
  AbortCell* cell(size_t slot) { return &slots_[slot].cell; }

  // RunClock stamp of the cancel order currently delivered to `slot` (0 when
  // none); the worker reads it after observing the cancellation to measure
  // cancel-to-release latency.
  TimeMicros cancel_time(size_t slot) const {
    return slots_[slot].cancel_time.load(std::memory_order_relaxed);
  }

  // Initiator side (safe from the Atropos control loop): a bounded scan of
  // atomic loads, two stores, and one CAS. Returns true if the key was found
  // in-flight. `now` (optional) timestamps the order for the cancel-to-release
  // measurement.
  bool RequestCancel(uint64_t key, TimeMicros now = 0) {
    if (TryDeliver(key, now)) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    missed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // One counter-free delivery scan, for retry loops that account the whole
  // order once at a higher level (LiveServer::DeliverCancel chasing a task
  // that was popped from the queue mid-abort but has not reached BeginTask
  // yet). Same lock-free shape as RequestCancel.
  bool TryDeliver(uint64_t key, TimeMicros now = 0) {
    for (Slot& s : slots_) {
      if (s.key.load(std::memory_order_seq_cst) == key) {
        // Stamp before the word: the worker only reads the stamp after it
        // observed the cancellation.
        s.cancel_time.store(now, std::memory_order_relaxed);
        s.cancel_key.store(key, std::memory_order_seq_cst);
        // Abort the wait the worker may be parked in right now. A miss is
        // fine: the Dekker pairing in abort_cell.h guarantees a waiter that
        // published after our store sees the cancel word before parking.
        s.cell.TryAbort(key);
        return true;
      }
    }
    return false;
  }

  // Shutdown: raise every occupied slot's cancel word (and abort its parked
  // wait) so long-running handlers abort promptly and the pool joins.
  void RequestCancelAll() {
    for (Slot& s : slots_) {
      const uint64_t key = s.key.load(std::memory_order_seq_cst);
      if (key != 0) {
        s.cancel_key.store(key, std::memory_order_seq_cst);
        s.cell.TryAbort(key);
      }
    }
  }

  uint64_t delivered() const { return delivered_.load(std::memory_order_relaxed); }
  // Cancel orders whose task was no longer (or not yet) on a worker: it
  // already completed, or was still queued. Still-queued tasks are handled by
  // the server's abortable queue (LiveServer::DeliverCancel falls through to
  // it); mid-run misses on completed tasks mean the overload resolved.
  uint64_t missed() const { return missed_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // One cache line per slot: the initiator's scan must not false-share
    // with the hot worker-side BeginTask/EndTask stores.
    alignas(64) std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> cancel_key{0};
    std::atomic<TimeMicros> cancel_time{0};
    AbortCell cell;
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> missed_{0};
};

}  // namespace atropos

#endif  // SRC_LIVE_CANCEL_BOARD_H_
