// CancelBoard: lock-free, allocation-free delivery of targeted cancellation
// to live worker threads.
//
// The Atropos dispatcher invokes the application's cancellation initiator
// from its own control loop; §3.6 requires that initiator to only *request*
// cancellation and return — no blocking, no allocation (the atropos_lint
// cancel-action-safety check enforces this shape). The board is the live
// subsystem's realization: one fixed slot per worker holding the key of the
// task the worker is executing plus a cancel flag. The initiator scans the
// slots with atomic loads and flips the matching flag; the worker polls the
// flag at its request checkpoints (the §2.4 cooperative pattern).

#ifndef SRC_LIVE_CANCEL_BOARD_H_
#define SRC_LIVE_CANCEL_BOARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atropos {

class CancelBoard {
 public:
  explicit CancelBoard(size_t workers) : slots_(workers) {}

  CancelBoard(const CancelBoard&) = delete;
  CancelBoard& operator=(const CancelBoard&) = delete;

  // Worker side. BeginTask publishes the worker's current task key (clearing
  // any stale cancel flag first, so a flag raced onto the *previous* task
  // can never leak into the next one); EndTask retracts it.
  void BeginTask(size_t slot, uint64_t key) {
    slots_[slot].cancel.store(false, std::memory_order_relaxed);
    slots_[slot].key.store(key, std::memory_order_release);
  }

  void EndTask(size_t slot) { slots_[slot].key.store(0, std::memory_order_release); }

  // The flag the worker's request handler polls at checkpoints.
  const std::atomic<bool>& flag(size_t slot) const { return slots_[slot].cancel; }

  // Initiator side (safe from the Atropos control loop): a bounded scan of
  // atomic loads plus one store. Returns true if the key was found in-flight.
  bool RequestCancel(uint64_t key) {
    for (Slot& s : slots_) {
      if (s.key.load(std::memory_order_acquire) == key) {
        s.cancel.store(true, std::memory_order_release);
        delivered_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    missed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Shutdown: raise every occupied slot's flag so long-running handlers
  // abort at their next checkpoint and the worker pool joins promptly.
  void RequestCancelAll() {
    for (Slot& s : slots_) {
      if (s.key.load(std::memory_order_acquire) != 0) {
        s.cancel.store(true, std::memory_order_release);
      }
    }
  }

  uint64_t delivered() const { return delivered_.load(std::memory_order_relaxed); }
  // Cancel orders whose task was no longer (or not yet) on a worker: it
  // already completed, or was still queued. Queued tasks are shed by the
  // server at shutdown; mid-run misses simply mean the overload resolved.
  uint64_t missed() const { return missed_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // One cache line per slot: the initiator's scan must not false-share
    // with the hot worker-side BeginTask/EndTask stores.
    alignas(64) std::atomic<uint64_t> key{0};
    std::atomic<bool> cancel{false};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> missed_{0};
};

}  // namespace atropos

#endif  // SRC_LIVE_CANCEL_BOARD_H_
