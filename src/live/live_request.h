// Request plumbing shared by the live server and the load generator.

#ifndef SRC_LIVE_LIVE_REQUEST_H_
#define SRC_LIVE_LIVE_REQUEST_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"

namespace atropos {

enum class LiveOutcome {
  kOk = 0,         // completed
  kCancelled = 1,  // targeted cancellation reached the handler mid-flight
  kShed = 2,       // queue full at submit, or drained unserved at shutdown
};

// Completion rendezvous for closed-loop clients. The client allocates one on
// its stack per request and blocks in Wait(); the server signals exactly once
// for every accepted request (at completion, cancellation, or shutdown
// drain), so Wait never needs a timeout and the stack storage never dangles.
class ClientWaiter {
 public:
  void Signal(LiveOutcome outcome) {
    // notify_one stays under the mutex on purpose: the waiter owns this
    // object's stack storage and destroys it as soon as Wait() returns, so
    // the waiter must not be able to re-acquire the mutex (and run the
    // destructor) while the signaller is still touching the condvar.
    std::lock_guard<std::mutex> lock(mu_);
    outcome_ = outcome;
    done_ = true;
    cv_.notify_one();
  }

  LiveOutcome Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return outcome_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ ATROPOS_GUARDED_BY(mu_) = false;
  LiveOutcome outcome_ ATROPOS_GUARDED_BY(mu_) = LiveOutcome::kOk;
};

// One in-flight request. `waiter` is null for open-loop (fire-and-forget)
// arrivals; the server only signals when it is set.
struct LiveRequest {
  uint64_t key = 0;
  int type = 0;
  uint64_t arg = 0;
  int client_class = 0;
  TimeMicros enqueued = 0;  // RunClock reading at submit
  ClientWaiter* waiter = nullptr;
};

// The request type is folded into the task key so any layer holding only the
// key — notably the drainer-side cancel observer, which must not consult
// cross-thread maps — can recover it with pure arithmetic.
constexpr uint64_t MakeLiveKey(int type, uint64_t seq) {
  return ((static_cast<uint64_t>(type) + 1) << 48) | (seq & ((1ull << 48) - 1));
}

constexpr int TypeOfLiveKey(uint64_t key) { return static_cast<int>(key >> 48) - 1; }

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_REQUEST_H_
