#include "src/live/live_server.h"

#include <chrono>
#include <cstdio>

#include "src/atropos/capi.h"

namespace atropos {

LiveServer::LiveServer(ConcurrentFrontend* frontend, Clock* clock, LiveApp* app,
                       LiveServerOptions options)
    : frontend_(frontend),
      clock_(clock),
      app_(app),
      options_(options),
      // The same default QUEUE resource instance the capi tracing stream uses
      // (InstallGlobalFrontend must therefore precede server construction):
      // queue waits and worker holds land on one resource, so the estimator
      // sees the thread pool the way case c9's simulator does.
      queue_resource_(CApiDefaultResource(CApiResourceType::QUEUE)),
      board_(options.workers),
      queue_(options.queue_capacity),
      worker_stats_(options.workers) {}

LiveServer::~LiveServer() { Stop(); }

bool LiveServer::Start() {
  State expected = State::kNew;
  if (!state_.compare_exchange_strong(expected, State::kStarting)) {
    // Fail loudly: the old lifecycle silently no-opped here, leaving callers
    // running against a server with no workers.
    std::fprintf(stderr, "LiveServer::Start: server %s; construct a new one to run again\n",
                 expected == State::kStopped ? "was already stopped" : "is already running");
    return false;
  }
  // Populate workers_ fully before publishing kRunning: Stop() only proceeds
  // from kRunning (spinning past kStarting), so it can never join/clear the
  // vector while this loop is still emplacing threads.
  workers_.reserve(options_.workers);
  for (size_t slot = 0; slot < options_.workers; slot++) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
  state_.store(State::kRunning, std::memory_order_seq_cst);
  return true;
}

bool LiveServer::Submit(LiveRequest req) {
  req.enqueued = clock_->NowMicros();
  if (state_.load(std::memory_order_seq_cst) != State::kRunning) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t key = req.key;
  const int type = req.type;
  const int client_class = req.client_class;
  // The events are emitted by the under-lock hook: inside the queue mutex,
  // after the slot is filled but before any worker can pop it, so the
  // worker's OnWaitEnd stamp can only be later.
  const bool accepted = queue_.Push(req, key, [this, key, type, client_class] {
    frontend_->OnTaskRegistered(key, /*background=*/false);
    frontend_->OnRequestStart(key, type, client_class);
    frontend_->OnWaitBegin(key, queue_resource_);
  });
  if (!accepted) {
    // Queue full, or Stop closed it between the state check and the push.
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
  return accepted;
}

bool LiveServer::DeliverCancel(uint64_t key) {
  const TimeMicros now = clock_->NowMicros();
  if (board_.RequestCancel(key, now)) {
    return true;
  }
  switch (queue_.AbortKey(key)) {
    case AbortableQueue<LiveRequest>::AbortResult::kAborted:
      return true;
    case AbortableQueue<LiveRequest>::AbortResult::kMiss:
      return false;  // completed, or never admitted — nothing to cancel
    case AbortableQueue<LiveRequest>::AbortResult::kRaced:
      break;
  }
  // A worker popped the slot while we were marking it and may have missed
  // the mark; it is a few instructions from BeginTask publishing the key on
  // the board. Chase it with a bounded, lock-free retry (counter-free scans:
  // this is still the same cancel order, already accounted one board miss).
  for (int attempt = 0; attempt < 256; attempt++) {
    if (board_.TryDeliver(key, now)) {
      return true;
    }
  }
  return false;  // the handler finished before ever reaching the board
}

void LiveServer::WorkerLoop(size_t slot) {
  WorkerStats* stats = &worker_stats_[slot];
  while (true) {
    AbortableQueue<LiveRequest>::Popped popped = queue_.Pop();
    if (popped.status == AbortableQueue<LiveRequest>::PopStatus::kClosed) {
      return;  // anything still queued is drained and shed by Stop()
    }
    LiveRequest req = std::move(popped.item);
    frontend_->OnWaitEnd(req.key, queue_resource_);
    if (popped.status == AbortableQueue<LiveRequest>::PopStatus::kAborted) {
      // Cancelled in place while still queued: the queue wait was this task's
      // first and only blocking point, and it never executes.
      stats->queued_cancelled++;
      FinishRequest(req, LiveOutcome::kCancelled, stats, /*cancel_at=*/0);
      continue;
    }
    board_.BeginTask(slot, req.key);
    LiveOutcome out;
    {
      // The paper's thread-identity attribution: a stack handle made current
      // for the duration of the request. The task itself was registered by
      // Submit; the handle only routes this thread's tracing to its key.
      Cancellable handle{req.key};
      CancellableScope scope(&handle);
      getResource(1, CApiResourceType::QUEUE);  // holding one worker
      WaitContext ctx;
      ctx.signal = board_.signal(slot, req.key);
      ctx.cell = options_.abortable_sync ? board_.cell(slot) : nullptr;
      out = app_->Execute(req, ctx);
      freeResource(1, CApiResourceType::QUEUE);
    }
    // Read the order stamp before EndTask: it belongs to this task's slot
    // occupancy (BeginTask clears it for the next one).
    const TimeMicros cancel_at = board_.cancel_time(slot);
    board_.EndTask(slot);
    FinishRequest(req, out, stats, cancel_at);
  }
}

void LiveServer::FinishRequest(const LiveRequest& req, LiveOutcome out, WorkerStats* stats,
                               TimeMicros cancel_at) {
  const TimeMicros now = clock_->NowMicros();
  const TimeMicros latency = now >= req.enqueued ? now - req.enqueued : 0;
  frontend_->OnRequestEnd(req.key, latency, req.type, req.client_class);
  frontend_->OnTaskFreed(req.key);
  if (out == LiveOutcome::kCancelled && aborting_.load(std::memory_order_acquire)) {
    // Aborted by the shutdown sweep, not by Atropos: account it as shed.
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (req.waiter != nullptr) {
      req.waiter->Signal(LiveOutcome::kShed);
    }
    return;
  }
  // Measurement-window membership is decided by when the request was
  // *admitted*: gating on completion time biased the warmup boundary toward
  // slow requests (fast warmup requests finished before measure_start and
  // were dropped; slow ones leaked in).
  if (req.enqueued >= options_.measure_start) {
    LiveTypeStats& ts = stats->by_type[req.type];
    if (out == LiveOutcome::kCancelled) {
      ts.cancelled++;
      if (cancel_at > 0 && now >= cancel_at) {
        stats->cancel_to_release.Record(now - cancel_at);
      }
    } else {
      ts.completed++;
      ts.latency.Record(latency);
    }
  }
  if (req.waiter != nullptr) {
    req.waiter->Signal(out);
  }
}

void LiveServer::Stop() {
  // A Stop racing Start waits for the worker vector to be fully published
  // before taking it down — joining threads mid-emplace is a data race.
  while (state_.load(std::memory_order_seq_cst) == State::kStarting) {
    std::this_thread::yield();
  }
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopped)) {
    // Never started, or a previous Stop already ran (and merged the stats).
    return;
  }
  aborting_.store(true, std::memory_order_release);
  // Abort in-flight handlers — at their next checkpoint, or immediately if
  // parked in an abortable wait — so join is prompt. A worker can be between
  // popping a request and publishing it on the board; the second sweep after
  // a grace period closes that window.
  board_.RequestCancelAll();
  std::vector<LiveRequest> drained = queue_.CloseAndDrain();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  board_.RequestCancelAll();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();

  // The drained requests were accepted (their lifecycle events are already
  // in the rings), so close them out and wake their clients.
  for (const LiveRequest& req : drained) {
    const TimeMicros now = clock_->NowMicros();
    frontend_->OnWaitEnd(req.key, queue_resource_);
    frontend_->OnRequestEnd(req.key, now >= req.enqueued ? now - req.enqueued : 0, req.type,
                            req.client_class);
    frontend_->OnTaskFreed(req.key);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (req.waiter != nullptr) {
      req.waiter->Signal(LiveOutcome::kShed);
    }
  }

  for (const WorkerStats& ws : worker_stats_) {
    for (const auto& [type, s] : ws.by_type) {
      LiveTypeStats& dst = merged_[type];
      dst.completed += s.completed;
      dst.cancelled += s.cancelled;
      dst.latency.Merge(s.latency);
    }
    cancel_to_release_.Merge(ws.cancel_to_release);
    queued_cancelled_ += ws.queued_cancelled;
  }
}

}  // namespace atropos
