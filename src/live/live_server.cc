#include "src/live/live_server.h"

#include <chrono>

#include "src/atropos/capi.h"

namespace atropos {

LiveServer::LiveServer(ConcurrentFrontend* frontend, Clock* clock, LiveApp* app,
                       LiveServerOptions options)
    : frontend_(frontend),
      clock_(clock),
      app_(app),
      options_(options),
      // The same default QUEUE resource instance the capi tracing stream uses
      // (InstallGlobalFrontend must therefore precede server construction):
      // queue waits and worker holds land on one resource, so the estimator
      // sees the thread pool the way case c9's simulator does.
      queue_resource_(CApiDefaultResource(CApiResourceType::QUEUE)),
      board_(options.workers),
      worker_stats_(options.workers) {}

LiveServer::~LiveServer() { Stop(); }

void LiveServer::Start() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (started_) {
      return;
    }
    started_ = true;
  }
  workers_.reserve(options_.workers);
  for (size_t slot = 0; slot < options_.workers; slot++) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

bool LiveServer::Submit(LiveRequest req) {
  req.enqueued = clock_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopping_ || queue_.size() >= options_.queue_capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Emitted under the queue mutex, before the request is visible to any
    // worker: the worker's OnWaitEnd stamp can only be later.
    frontend_->OnTaskRegistered(req.key, /*background=*/false);
    frontend_->OnRequestStart(req.key, req.type, req.client_class);
    frontend_->OnWaitBegin(req.key, queue_resource_);
    queue_.push_back(req);
  }
  queue_cv_.notify_one();
  return true;
}

void LiveServer::WorkerLoop(size_t slot) {
  WorkerStats* stats = &worker_stats_[slot];
  while (true) {
    LiveRequest req;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        // Anything still queued is drained and shed by Stop().
        return;
      }
      req = queue_.front();
      queue_.pop_front();
    }
    frontend_->OnWaitEnd(req.key, queue_resource_);
    board_.BeginTask(slot, req.key);
    LiveOutcome out;
    {
      // The paper's thread-identity attribution: a stack handle made current
      // for the duration of the request. The task itself was registered by
      // Submit; the handle only routes this thread's tracing to its key.
      Cancellable handle{req.key};
      CancellableScope scope(&handle);
      getResource(1, CApiResourceType::QUEUE);  // holding one worker
      out = app_->Execute(req, board_.flag(slot));
      freeResource(1, CApiResourceType::QUEUE);
    }
    board_.EndTask(slot);
    FinishRequest(req, out, stats);
  }
}

void LiveServer::FinishRequest(const LiveRequest& req, LiveOutcome out, WorkerStats* stats) {
  const TimeMicros now = clock_->NowMicros();
  const TimeMicros latency = now >= req.enqueued ? now - req.enqueued : 0;
  frontend_->OnRequestEnd(req.key, latency, req.type, req.client_class);
  frontend_->OnTaskFreed(req.key);
  if (out == LiveOutcome::kCancelled && aborting_.load(std::memory_order_acquire)) {
    // Aborted by the shutdown sweep, not by Atropos: account it as shed.
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (req.waiter != nullptr) {
      req.waiter->Signal(LiveOutcome::kShed);
    }
    return;
  }
  if (now >= options_.measure_start) {
    LiveTypeStats& ts = stats->by_type[req.type];
    if (out == LiveOutcome::kCancelled) {
      ts.cancelled++;
    } else {
      ts.completed++;
      ts.latency.Record(latency);
    }
  }
  if (req.waiter != nullptr) {
    req.waiter->Signal(out);
  }
}

void LiveServer::Stop() {
  std::vector<LiveRequest> drained;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopping_) {
      return;
    }
    stopping_ = true;
    drained.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  queue_cv_.notify_all();
  // Abort in-flight handlers at their next checkpoint so join is prompt. A
  // worker can be between popping a request and publishing it on the board;
  // the second sweep after a grace period closes that window.
  aborting_.store(true, std::memory_order_release);
  board_.RequestCancelAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  board_.RequestCancelAll();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();

  // The drained requests were accepted (their lifecycle events are already
  // in the rings), so close them out and wake their clients.
  for (const LiveRequest& req : drained) {
    const TimeMicros now = clock_->NowMicros();
    frontend_->OnWaitEnd(req.key, queue_resource_);
    frontend_->OnRequestEnd(req.key, now >= req.enqueued ? now - req.enqueued : 0, req.type,
                            req.client_class);
    frontend_->OnTaskFreed(req.key);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (req.waiter != nullptr) {
      req.waiter->Signal(LiveOutcome::kShed);
    }
  }

  for (const WorkerStats& ws : worker_stats_) {
    for (const auto& [type, s] : ws.by_type) {
      LiveTypeStats& dst = merged_[type];
      dst.completed += s.completed;
      dst.cancelled += s.cancelled;
      dst.latency.Merge(s.latency);
    }
  }
}

}  // namespace atropos
