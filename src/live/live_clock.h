// Wall-clock time source for live-threads execution mode.
//
// RunClock is a SteadyClock rebased to an epoch captured at construction, so
// a live run's timestamps start near zero exactly like the simulator's
// virtual clock. That alignment is what lets the sim-vs-live digest
// cross-check compare event times as fractions of the run without carrying
// absolute epochs around.

#ifndef SRC_LIVE_LIVE_CLOCK_H_
#define SRC_LIVE_LIVE_CLOCK_H_

#include "src/common/clock.h"

namespace atropos {

class RunClock final : public Clock {
 public:
  RunClock() : epoch_(base_.NowMicros()) {}

  TimeMicros NowMicros() const override {
    const TimeMicros now = base_.NowMicros();
    return now >= epoch_ ? now - epoch_ : 0;
  }

 private:
  SteadyClock base_;
  TimeMicros epoch_;
};

}  // namespace atropos

#endif  // SRC_LIVE_LIVE_CLOCK_H_
