// In-process load generator driving LiveServer from real client threads.
//
// Two stream shapes, matching the simulator's TrafficSpec:
//
//  - Open loop: one pacing thread per stream submits fire-and-forget
//    requests at Poisson inter-arrival gaps (Rng::NextExponential). Arrival
//    rate is independent of server latency, so queueing collapse under
//    overload is visible instead of being absorbed by client back-pressure.
//
//  - Closed loop: `clients` threads each submit one request, block on a
//    stack ClientWaiter until the server signals it, optionally think, and
//    repeat. Waiting never times out: the server's exactly-once signal
//    contract (completion / cancellation / shutdown shed) guarantees wakeup.
//
// Start() launches all stream threads with a shared run deadline; Join()
// waits for them. The server must be Stop()ped before Join() at shutdown so
// parked closed-loop waiters are released (see live_run.cc for the ordering).

#ifndef SRC_LIVE_LOADGEN_H_
#define SRC_LIVE_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/live/live_server.h"

namespace atropos {

struct OpenLoopSpec {
  int type = 0;
  double qps = 0;
  uint64_t arg = 0;
  int client_class = 0;
  TimeMicros start = 0;  // RunClock time the stream switches on
  TimeMicros end = 0;    // 0 = until the run deadline
};

struct ClosedLoopSpec {
  int type = 0;
  size_t clients = 1;
  uint64_t arg = 0;
  int client_class = 0;
  TimeMicros think_time = 0;
  TimeMicros start = 0;
  TimeMicros end = 0;  // 0 = until the run deadline
};

// A single one-off burst: `count` requests submitted back to back at `at`.
// The live analogue of the simulator's OneShotSpec, used to inject the
// culprit wave of the overload scenarios.
struct BurstSpec {
  int type = 0;
  size_t count = 0;
  uint64_t arg = 0;
  int client_class = 0;
  TimeMicros at = 0;
};

class LoadGen {
 public:
  LoadGen(LiveServer* server, Clock* clock, uint64_t seed)
      : server_(server), clock_(clock), rng_(seed) {}

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  void AddOpenLoop(OpenLoopSpec spec) { open_specs_.push_back(spec); }
  void AddClosedLoop(ClosedLoopSpec spec) { closed_specs_.push_back(spec); }
  void AddBurst(BurstSpec spec) { burst_specs_.push_back(spec); }

  // Launches every stream thread. Streams stop generating at min(spec.end,
  // deadline) on the run clock.
  void Start(TimeMicros deadline);
  void Join();

  // Requests handed to Submit (accepted or shed), all streams.
  uint64_t arrivals() const { return arrivals_.load(std::memory_order_relaxed); }

 private:
  void RunOpenLoop(OpenLoopSpec spec, TimeMicros deadline, Rng rng);
  void RunClosedClient(ClosedLoopSpec spec, TimeMicros deadline);
  void RunBurst(BurstSpec spec, TimeMicros deadline);
  bool SubmitOne(int type, uint64_t arg, int client_class, ClientWaiter* waiter);

  // Sleeps in short slices so a stream reacts to the deadline promptly even
  // mid-gap. Returns false once `until` is past the deadline-capped clock.
  void SleepUntil(TimeMicros until, TimeMicros deadline);

  LiveServer* server_;
  Clock* clock_;
  Rng rng_;

  std::vector<OpenLoopSpec> open_specs_;
  std::vector<ClosedLoopSpec> closed_specs_;
  std::vector<BurstSpec> burst_specs_;

  std::vector<std::thread> threads_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> arrivals_{0};
};

}  // namespace atropos

#endif  // SRC_LIVE_LOADGEN_H_
